"""Execution backends: where Monte-Carlo rep blocks actually run.

The statistics layer (:mod:`repro.sim.metrics`) makes a cell's estimate
a fold of O(1) per-block accumulators, merged in block order.  This
module is the other half of that seam: an :class:`ExecutionBackend` is
anything that can evaluate a batch of :class:`BlockTask`\\ s — one
fixed-size rep block of one cell each — and return their accumulators.
:class:`~repro.sim.parallel.BatchRunner` plans the blocks, hands them
to a backend, and merges the results; it never cares *where* a block
ran.

Three backends ship today:

* :class:`SerialBackend` — in-process loop; the reference semantics and
  the fallback everywhere.
* :class:`ProcessBackend` — a lazily created, reused
  :class:`~concurrent.futures.ProcessPoolExecutor`.  Jobs whose payload
  cannot be pickled run in-process; a broken pool is discarded and its
  blocks recomputed locally, so the backend never fails where the
  serial path would have succeeded.
* :class:`DistributedBackend` — the stub surface a remote executor
  plugs into.  The contract it must honour is exactly the one the
  process pool honours (see its docstring); nothing upstream changes.

Determinism does not depend on the backend: block tasks are keyed by
absolute block index, every job re-derives its random streams from that
key, and the caller merges results in block order whatever order they
completed in.
"""

from __future__ import annotations

import os
import pickle
import sys
import time
import weakref
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import (
    Deque,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.errors import ConfigurationError, ParameterError, SimulationError
from repro.sim.energy import EnergyModel
from repro.sim.executor import SimulationLimits
from repro.sim.faults import FaultProcess
from repro.sim.montecarlo import CellAccumulator, PolicyFactory, accumulate_range
from repro.sim.task import TaskSpec

__all__ = [
    "CellJob",
    "BlockTask",
    "DispatchStats",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessBackend",
    "DistributedBackend",
    "BACKEND_NAMES",
    "make_backend",
    "execute_block",
    "execute_batch",
    "dispatch_kind",
    "plan_blocks",
    "default_workers",
]

#: The backend names the string selector accepts (CLI ``--backend``).
BACKEND_NAMES = ("serial", "process", "distributed")

#: Target wall-clock per dispatched batch for latency-adaptive
#: batching: long enough to amortise per-message overhead on cheap
#: (fast-static) blocks, short enough that a worker claim never holds
#: more than a fraction of a second of work from the other workers.
DEFAULT_DISPATCH_TARGET = 0.25

#: Upper bound on adaptively grown batch sizes.
MAX_DISPATCH_BATCH = 64


def default_workers() -> int:
    """The machine's CPU count (the natural ``workers`` choice)."""
    return os.cpu_count() or 1


@dataclass(frozen=True)
class CellJob:
    """One event-executor Monte-Carlo cell, described enough to ship.

    Everything a worker process needs to run a block of the cell: the
    payload must be picklable (dataclass specs and ``functools.partial``
    of module-level policies are; closures are not — those fall back to
    in-process execution).
    """

    task: TaskSpec
    policy_factory: PolicyFactory
    reps: int
    seed: int = 0
    faults: Optional[FaultProcess] = None
    energy_model: Optional[EnergyModel] = None
    faults_during_overhead: bool = False
    limits: SimulationLimits = field(default_factory=SimulationLimits)
    kernel: str = "exact"

    def __post_init__(self) -> None:
        if self.reps <= 0:
            raise ParameterError(f"reps must be > 0, got {self.reps}")
        if self.kernel not in ("exact", "fast"):
            raise ParameterError(
                f"kernel must be 'exact' or 'fast', got {self.kernel!r}"
            )

    def run_block(self, block: int, start: int, stop: int) -> CellAccumulator:
        """Run reps ``[start, stop)`` of this cell into an accumulator.

        In exact mode rep ``i`` draws from ``SeedSequence(seed,
        spawn_key=(i,))`` whatever the block bounds, so ``block`` is
        unused here — the executor path is deterministic *per rep*,
        stronger than the per-block contract the static fast path
        provides.  Runs flow through the worker's reusable
        :class:`~repro.sim.montecarlo.RunSlab` (bit-identical to
        per-rep accumulation, see :func:`~repro.sim.montecarlo.
        accumulate_range`).  In fast mode the block's draws are a pure
        function of ``(seed, start)``, so results are deterministic
        *per block* for a fixed chunk size — any backend and worker
        count agree within fast mode.
        """
        return accumulate_range(
            self.task,
            self.policy_factory,
            start=start,
            stop=stop,
            seed=self.seed,
            faults=self.faults,
            energy_model=self.energy_model,
            faults_during_overhead=self.faults_during_overhead,
            limits=self.limits,
            kernel=self.kernel,
        )


@dataclass(frozen=True)
class BlockTask:
    """One fixed-size rep block of one job in a batch.

    ``block`` is the absolute block index within the job (``start ==
    block · block_size``); the merge at the coordinator happens in
    ``(job_index, block)`` order regardless of completion order.
    """

    job: object  # CellJob or repro.sim.fastpath.StaticCellJob
    job_index: int
    block: int
    start: int
    stop: int


def execute_block(task: BlockTask) -> CellAccumulator:
    """Worker entry point (module-level so it pickles by reference)."""
    return task.job.run_block(task.block, task.start, task.stop)


def execute_batch(
    tasks: Sequence[BlockTask],
) -> Tuple[List[CellAccumulator], float]:
    """Run several block tasks in one worker round trip.

    Returns the accumulators (input order) plus the *measured compute
    seconds* for the whole batch — the latency observation that feeds
    :class:`DispatchStats`.  Batching is transport-only: each block is
    still evaluated by :func:`execute_block`, so results are bit-
    identical whatever rides together.
    """
    started = time.perf_counter()
    results = [execute_block(task) for task in tasks]
    return results, time.perf_counter() - started


def dispatch_kind(task: BlockTask) -> str:
    """The latency class of a block task (its job type).

    Static fast-path blocks are ~100× cheaper than event-executor
    blocks, so latency statistics are kept per job type — one EWMA for
    ``StaticCellJob``, one for ``CellJob`` — rather than pooled.
    """
    return type(task.job).__name__


class DispatchStats:
    """EWMA of observed per-block compute latency, per job kind.

    Turns a latency target into a batch size: cheap blocks ride many to
    a message, expensive blocks go one at a time.  Until a kind has an
    observation its batch size is 1 — maximum parallelism, and the
    first completions seed the estimate.  Purely a dispatch heuristic:
    it never affects block boundaries, seeding, or merge order, so
    results are bit-identical for any state of the statistics
    (``tests/test_backend_conformance.py``).
    """

    __slots__ = ("target_seconds", "alpha", "max_batch", "_ewma")

    def __init__(
        self,
        target_seconds: float = DEFAULT_DISPATCH_TARGET,
        alpha: float = 0.25,
        max_batch: int = MAX_DISPATCH_BATCH,
    ) -> None:
        if target_seconds <= 0:
            raise ParameterError(
                f"target_seconds must be > 0, got {target_seconds}"
            )
        if not 0 < alpha <= 1:
            raise ParameterError(f"alpha must be in (0, 1], got {alpha}")
        if max_batch < 1:
            raise ParameterError(f"max_batch must be >= 1, got {max_batch}")
        self.target_seconds = float(target_seconds)
        self.alpha = float(alpha)
        self.max_batch = int(max_batch)
        self._ewma: Dict[str, float] = {}

    def observe(self, kind: str, block_seconds: float) -> None:
        """Record the measured compute time of one block of ``kind``."""
        if block_seconds < 0:
            return
        current = self._ewma.get(kind)
        if current is None:
            self._ewma[kind] = block_seconds
        else:
            self._ewma[kind] = (
                self.alpha * block_seconds + (1.0 - self.alpha) * current
            )

    def block_latency(self, kind: str) -> Optional[float]:
        """Current latency estimate for ``kind`` (None before data)."""
        return self._ewma.get(kind)

    def batch_size(self, kind: str) -> int:
        """Blocks of ``kind`` to ride one message, from the EWMA."""
        latency = self._ewma.get(kind)
        if latency is None or latency <= 0:
            return 1
        return max(1, min(int(self.target_seconds / latency), self.max_batch))


def plan_blocks(jobs: Sequence[object], block_size: int) -> List[BlockTask]:
    """Every job's rep range cut into fixed-size blocks, in order."""
    if block_size < 1:
        raise ParameterError(f"block_size must be >= 1, got {block_size}")
    return [
        BlockTask(
            job=job,
            job_index=index,
            block=block,
            start=start,
            stop=min(start + block_size, job.reps),
        )
        for index, job in enumerate(jobs)
        for block, start in enumerate(range(0, job.reps, block_size))
    ]


@runtime_checkable
class ExecutionBackend(Protocol):
    """Anything that can evaluate a batch of block tasks.

    Implementations must return one :class:`~repro.sim.montecarlo.
    CellAccumulator` per task, aligned with the input order (completion
    order is the backend's business; result order is not).  They must
    not perturb the tasks' random streams — all seeding is derived from
    the task payload itself.
    """

    name: str

    def run_tasks(
        self, tasks: Sequence[BlockTask]
    ) -> List[CellAccumulator]:  # pragma: no cover - protocol
        ...

    def close(self) -> None:  # pragma: no cover - protocol
        ...


class SerialBackend:
    """In-process block execution — the reference backend."""

    name = "serial"

    def run_tasks(self, tasks: Sequence[BlockTask]) -> List[CellAccumulator]:
        return [execute_block(task) for task in tasks]

    def close(self) -> None:
        """Nothing to release."""


class ProcessBackend:
    """Block execution over a lazily created, reused process pool.

    Dispatch is **latency-adaptive** (on by default): consecutive
    same-kind blocks are grouped so one pool round trip carries
    ``target_seconds`` of estimated compute — fast-static blocks (cheap)
    ride dozens to a message while executor blocks go individually, so
    mixed grids neither convoy behind per-future overhead nor
    load-imbalance behind huge claims.  Submission is windowed: groups
    are sized with the *current* EWMA as earlier groups complete.
    Grouping is transport-only — block boundaries, seeding and merge
    order are untouched, so results are bit-identical with adaptive
    batching on or off (``tests/test_backend_conformance.py``).

    Parameters
    ----------
    workers:
        Worker processes; ``None`` means :func:`default_workers`.
    adaptive_batching:
        ``False`` pins every group to one block (the pre-adaptive
        dispatch); ``None``/``True`` enables the EWMA sizing.
    """

    name = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        adaptive_batching: Optional[bool] = None,
        dispatch_stats: Optional[DispatchStats] = None,
    ) -> None:
        if workers is None:
            workers = default_workers()
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.adaptive_batching = (
            True if adaptive_batching is None else bool(adaptive_batching)
        )
        self.dispatch_stats = dispatch_stats or DispatchStats()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._finalizer: Optional[weakref.finalize] = None

    def close(self) -> None:
        """Shut down the worker pool (idempotent; pool recreates lazily)."""
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._pool = None

    def _next_group(
        self, tasks: Sequence[BlockTask], pending: Deque[int]
    ) -> Tuple[List[int], str]:
        """Pop the next dispatch group: consecutive blocks of one kind."""
        head_kind = dispatch_kind(tasks[pending[0]])
        size = (
            self.dispatch_stats.batch_size(head_kind)
            if self.adaptive_batching
            else 1
        )
        group = [pending.popleft()]
        while pending and len(group) < size:
            if dispatch_kind(tasks[pending[0]]) != head_kind:
                break
            group.append(pending.popleft())
        return group, head_kind

    def run_tasks(self, tasks: Sequence[BlockTask]) -> List[CellAccumulator]:
        results: List[Optional[CellAccumulator]] = [None] * len(tasks)
        pooled, local = partition_shippable(tasks)
        pending: Deque[int] = deque(pooled)
        in_flight: Dict[Future, Tuple[List[int], str]] = {}
        # Enough groups in flight to keep every worker busy while the
        # EWMA converges; small enough that late groups still benefit
        # from updated batch sizes.
        window = self.workers * 2
        broken = False

        def submit_upto_window() -> None:
            nonlocal broken
            while not broken and pending and len(in_flight) < window:
                group, kind = self._next_group(tasks, pending)
                try:
                    future = self._ensure_pool().submit(
                        execute_batch, [tasks[index] for index in group]
                    )
                except BrokenExecutor:
                    # The pool died while we were still handing it work
                    # (e.g. a worker OOM-killed between batches); the
                    # unsubmitted remainder runs in-process below.
                    pending.extendleft(reversed(group))
                    self.close()
                    broken = True
                    return
                in_flight[future] = (group, kind)

        def collect(done) -> None:
            nonlocal broken
            for future in done:
                group, kind = in_flight.pop(future)
                try:
                    accumulators, elapsed = future.result()
                except BrokenExecutor:
                    # A dead worker poisons the whole executor; discard
                    # it (the next batch gets a fresh one) and recompute
                    # in-process — the work is deterministic, so the
                    # backend must not fail where the serial path would
                    # have succeeded.
                    self.close()
                    broken = True
                    for index in group:
                        results[index] = execute_block(tasks[index])
                else:
                    self.dispatch_stats.observe(kind, elapsed / len(group))
                    for index, accumulator in zip(group, accumulators):
                        results[index] = accumulator

        submit_upto_window()
        # Unshippable blocks run in-process *while* the pool works on
        # the submitted ones, so a mixed grid overlaps both phases; a
        # zero-timeout sweep after each local block keeps the window
        # topped up so the pool never idles behind the local loop.
        for index in local:
            results[index] = execute_block(tasks[index])
            if in_flight:
                done, _ = wait(in_flight, timeout=0)
                collect(done)
                submit_upto_window()
        while in_flight:
            done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
            collect(done)
            submit_upto_window()
        for index in pending:  # pool broke: finish the tail in-process
            results[index] = execute_block(tasks[index])
        return results  # type: ignore[return-value] - every slot filled

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The lazily-created, reused worker pool.

        Reuse amortises worker startup across batches (``validate``
        runs one batch per table); a ``weakref.finalize`` shuts the
        pool down when the backend is garbage-collected, so callers who
        never bother with :meth:`close` leak nothing.
        """
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
            self._finalizer = weakref.finalize(
                self, ProcessPoolExecutor.shutdown, self._pool, wait=True
            )
        return self._pool


class DistributedBackend:
    """Block execution over the socket transport in
    :mod:`repro.sim.distributed`.

    The off-host contract — what the transport honours and everything
    it may rely on — is:

    * **Payload.**  Tasks pickle: jobs are frozen dataclasses of specs
      and ``functools.partial`` factories over module-level classes.
      Jobs that do *not* pickle (closures) run in-process instead.
    * **Results.**  One accumulator per task, aligned with input order;
      each is O(1) in ``stop - start`` (streaming moments and integer
      counters — never raw observations), so result transport is
      constant-size per block.
    * **Determinism.**  All randomness is re-derived from the task
      payload (cell seed + absolute rep/block index).  A retried,
      re-routed or duplicated block computes the identical accumulator,
      so at-least-once delivery plus idempotent collection is enough.
    * **Merging** happens at the coordinator, in block order — workers
      never need to see each other.
    * **Availability.**  Dead workers have their in-flight tasks
      requeued (bounded retries); with no workers left the remainder is
      recomputed in-process — the backend never fails where
      :class:`SerialBackend` would have succeeded.

    Parameters
    ----------
    url:
        Bind address for the coordinator, ``tcp://host:port`` (default
        loopback with an OS-assigned port).  Remote workers join with
        ``repro worker tcp://<coordinator-host>:<port>``.
    cluster:
        A :class:`~repro.sim.distributed.LocalCluster` (or a worker
        count, shorthand for one) to spawn loopback worker subprocesses
        automatically — the tests/CLI path.  ``None`` means workers are
        started externally against :attr:`coordinator_url`.

    The coordinator and any cluster start lazily on first
    :meth:`run_tasks`; :meth:`close` tears both down and is idempotent
    (a closed backend reopens fresh on the next batch).
    """

    name = "distributed"

    def __init__(
        self,
        url: Optional[str] = None,
        *,
        cluster: Optional[object] = None,
        batch_size: Optional[int] = None,
        max_retries: Optional[int] = None,
        connect_timeout: Optional[float] = None,
        adaptive_batching: Optional[bool] = None,
        tls: Optional[object] = None,
        straggler_factor: Optional[float] = None,
        straggler_grace: Optional[float] = None,
    ) -> None:
        if isinstance(cluster, int):
            from repro.sim.distributed import LocalCluster

            cluster = LocalCluster(cluster, tls=tls)
        self.url = url
        self.cluster = cluster
        self.batch_size = batch_size
        self.max_retries = max_retries
        # None = coordinator default, unless the cluster carries its
        # own advisory timeout (slow CI hosts configure it there).
        if connect_timeout is None and cluster is not None:
            connect_timeout = getattr(cluster, "connect_timeout", None)
        self.connect_timeout = connect_timeout
        self.adaptive_batching = adaptive_batching
        #: :class:`~repro.sim.distributed.TLSConfig` (or None): the
        #: coordinator serves TLS and a :class:`LocalCluster` built
        #: here spawns workers with the matching flags.
        self.tls = tls
        #: None = coordinator default; 0 disables speculation (the
        #: same convention ``--straggler-factor 0`` uses on the CLI).
        self.straggler_factor = straggler_factor
        self.straggler_grace = straggler_grace
        self._coordinator = None

    @property
    def coordinator_url(self) -> Optional[str]:
        """Where workers should connect (None until the first batch)."""
        if self._coordinator is None:
            return None
        return self._coordinator.url

    def run_tasks(self, tasks: Sequence[BlockTask]) -> List[CellAccumulator]:
        tasks = list(tasks)
        if not tasks:
            return []  # nothing to ship: no transport needed either
        return self._ensure_coordinator().run_tasks(tasks)

    def close(self) -> None:
        """Stop the cluster workers and the coordinator (idempotent)."""
        if self.cluster is not None:
            self.cluster.close()
        if self._coordinator is not None:
            self._coordinator.close()
            self._coordinator = None

    def _ensure_coordinator(self):
        if self._coordinator is None:
            from repro.sim.distributed import Coordinator

            kwargs = {}
            if self.batch_size is not None:
                kwargs["batch_size"] = self.batch_size
            if self.max_retries is not None:
                kwargs["max_retries"] = self.max_retries
            if self.adaptive_batching is not None:
                kwargs["adaptive_batching"] = self.adaptive_batching
            if self.connect_timeout is not None:
                kwargs["wait_timeout"] = self.connect_timeout
            if self.tls is not None:
                kwargs["tls"] = self.tls
            if self.straggler_factor is not None:
                kwargs["straggler_factor"] = (
                    None if self.straggler_factor == 0
                    else self.straggler_factor
                )
            if self.straggler_grace is not None:
                kwargs["straggler_grace"] = self.straggler_grace
            self._coordinator = Coordinator(
                self.url or "tcp://127.0.0.1:0", **kwargs
            )
            if self.cluster is not None:
                self.cluster.start(self._coordinator.url)
                connected = self._coordinator.wait_for_workers(
                    self.cluster.size
                )
                if connected == 0 and self.cluster.size > 0:
                    # An explicitly requested cluster where *nothing*
                    # connected is a broken deployment (bad worker
                    # entry point, wrong secret, rejected TLS), not a
                    # transient fault: failing loudly beats silently
                    # computing the whole grid in-process.  Workers
                    # dying later still fall back gracefully.
                    timeout = self._coordinator.wait_timeout
                    self.close()
                    raise SimulationError(
                        f"none of the {self.cluster.size} cluster workers "
                        f"connected within {timeout}s"
                    )
                if connected < self.cluster.size:
                    print(
                        f"repro: warning: only {connected} of "
                        f"{self.cluster.size} cluster workers connected",
                        file=sys.stderr,
                    )
            elif self.url is not None:
                # An explicit URL means external workers are expected;
                # give the first one a moment to join so small batches
                # don't fall back in-process before anyone arrives.
                self._coordinator.wait_for_workers(1)
        return self._coordinator


def make_backend(
    backend,
    *,
    workers: Optional[int] = None,
    cluster_workers: Optional[int] = None,
    url: Optional[str] = None,
    adaptive_batching: Optional[bool] = None,
    tls: Optional[object] = None,
    connect_timeout: Optional[float] = None,
    straggler_factor: Optional[float] = None,
):
    """Resolve a backend selector to an :class:`ExecutionBackend`.

    ``backend`` may already be a backend instance (returned as-is) or
    one of :data:`BACKEND_NAMES`:

    * ``"serial"`` — :class:`SerialBackend` (in-process reference).
    * ``"process"`` — :class:`ProcessBackend` over ``workers``
      processes (``None`` = one per CPU).
    * ``"distributed"`` — :class:`DistributedBackend`; with
      ``cluster_workers`` it spawns that many loopback worker
      subprocesses, with ``url`` it binds the coordinator there for
      externally started workers.

    ``adaptive_batching`` (``None`` = backend default, i.e. on)
    controls latency-adaptive dispatch for the parallel backends; it is
    a pure dispatch knob with no effect on results, and meaningless
    (rejected) for ``"serial"``.

    The remaining knobs are ``"distributed"``-only: ``tls`` (a
    :class:`~repro.sim.distributed.TLSConfig`) wraps the coordinator
    socket, ``connect_timeout`` bounds the wait for workers to join,
    and ``straggler_factor`` tunes speculative re-execution (``0``
    disables it, ``None`` keeps the coordinator default) — all
    dispatch/transport knobs with no effect on results.
    """
    if not isinstance(backend, str):
        if isinstance(backend, ExecutionBackend):
            if (
                workers is not None
                or cluster_workers
                or url is not None
                or adaptive_batching is not None
                or tls is not None
                or connect_timeout is not None
                or straggler_factor is not None
            ):
                raise ParameterError(
                    "workers/cluster_workers/url/adaptive_batching/tls/"
                    "connect_timeout/straggler_factor cannot "
                    "reconfigure an already-constructed backend instance; "
                    "pass them when building it, or use a backend name"
                )
            return backend
        raise ParameterError(
            f"backend must be an ExecutionBackend or one of "
            f"{BACKEND_NAMES}, got {backend!r}"
        )
    # Reject topology knobs the chosen backend cannot honour rather
    # than silently dropping them — the CLI layer raises for the same
    # contradictions, and the API must not be looser.
    if backend != "distributed" and (cluster_workers or url is not None):
        raise ParameterError(
            f"cluster_workers/url only apply to backend='distributed', "
            f"not {backend!r}"
        )
    if backend != "distributed" and (
        tls is not None
        or connect_timeout is not None
        or straggler_factor is not None
    ):
        raise ParameterError(
            f"tls/connect_timeout/straggler_factor only apply to "
            f"backend='distributed', not {backend!r}"
        )
    if backend in ("serial", "distributed") and workers is not None:
        raise ParameterError(
            f"workers does not apply to backend={backend!r}"
            + (" (use cluster_workers)" if backend == "distributed" else "")
        )
    if backend == "serial":
        if adaptive_batching is not None:
            raise ParameterError(
                "adaptive_batching does not apply to backend='serial' "
                "(there is no dispatch to batch)"
            )
        return SerialBackend()
    if backend == "process":
        # ``workers=0`` is ExecutionSettings' "one per CPU" spelling —
        # at this layer only ``None`` means that, so catch the off-by-
        # one-layer value explicitly instead of letting ProcessBackend
        # reject it with a bare range error (mirrors the distributed
        # backend's explicit zero-cluster_workers handling).
        if workers == 0:
            raise ConfigurationError(
                "workers must be >= 1 for the process backend, or None "
                "for one per CPU; got 0 (ExecutionSettings maps its "
                "workers=0 convention to None before reaching here)"
            )
        return ProcessBackend(workers, adaptive_batching=adaptive_batching)
    if backend == "distributed":
        cluster = cluster_workers if cluster_workers else None
        return DistributedBackend(
            url=url,
            cluster=cluster,
            adaptive_batching=adaptive_batching,
            tls=tls,
            connect_timeout=connect_timeout,
            straggler_factor=straggler_factor,
        )
    raise ParameterError(
        f"unknown backend {backend!r}; valid names: {', '.join(BACKEND_NAMES)}"
    )


def _picklable(job: object) -> bool:
    """Whether ``job`` can be shipped to a worker process."""
    try:
        pickle.dumps(job)
        return True
    except Exception:
        return False


def partition_shippable(
    tasks: Sequence[BlockTask],
) -> Tuple[List[int], List[int]]:
    """Split task indices into (shippable, in-process-only).

    The picklability probe is memoised per ``job_index`` — every block
    of a job shares one payload — and is the single fallback-partition
    policy for every off-process backend (the process pool and the
    distributed coordinator both use it), so the "closures run
    in-process" rule cannot drift between them.
    """
    shippable: Dict[int, bool] = {}
    remote: List[int] = []
    local: List[int] = []
    for index, task in enumerate(tasks):
        ok = shippable.get(task.job_index)
        if ok is None:
            ok = _picklable(task.job)
            shippable[task.job_index] = ok
        (remote if ok else local).append(index)
    return remote, local
