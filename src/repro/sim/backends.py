"""Execution backends: where Monte-Carlo rep blocks actually run.

The statistics layer (:mod:`repro.sim.metrics`) makes a cell's estimate
a fold of O(1) per-block accumulators, merged in block order.  This
module is the other half of that seam: an :class:`ExecutionBackend` is
anything that can evaluate a batch of :class:`BlockTask`\\ s — one
fixed-size rep block of one cell each — and return their accumulators.
:class:`~repro.sim.parallel.BatchRunner` plans the blocks, hands them
to a backend, and merges the results; it never cares *where* a block
ran.

Three backends ship today:

* :class:`SerialBackend` — in-process loop; the reference semantics and
  the fallback everywhere.
* :class:`ProcessBackend` — a lazily created, reused
  :class:`~concurrent.futures.ProcessPoolExecutor`.  Jobs whose payload
  cannot be pickled run in-process; a broken pool is discarded and its
  blocks recomputed locally, so the backend never fails where the
  serial path would have succeeded.
* :class:`DistributedBackend` — the stub surface a remote executor
  plugs into.  The contract it must honour is exactly the one the
  process pool honours (see its docstring); nothing upstream changes.

Determinism does not depend on the backend: block tasks are keyed by
absolute block index, every job re-derives its random streams from that
key, and the caller merges results in block order whatever order they
completed in.
"""

from __future__ import annotations

import os
import pickle
import sys
import weakref
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.errors import ParameterError, SimulationError
from repro.sim.energy import EnergyModel
from repro.sim.executor import SimulationLimits
from repro.sim.faults import FaultProcess
from repro.sim.montecarlo import CellAccumulator, PolicyFactory, run_range
from repro.sim.task import TaskSpec

__all__ = [
    "CellJob",
    "BlockTask",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessBackend",
    "DistributedBackend",
    "BACKEND_NAMES",
    "make_backend",
    "execute_block",
    "plan_blocks",
    "default_workers",
]

#: The backend names the string selector accepts (CLI ``--backend``).
BACKEND_NAMES = ("serial", "process", "distributed")


def default_workers() -> int:
    """The machine's CPU count (the natural ``workers`` choice)."""
    return os.cpu_count() or 1


@dataclass(frozen=True)
class CellJob:
    """One event-executor Monte-Carlo cell, described enough to ship.

    Everything a worker process needs to run a block of the cell: the
    payload must be picklable (dataclass specs and ``functools.partial``
    of module-level policies are; closures are not — those fall back to
    in-process execution).
    """

    task: TaskSpec
    policy_factory: PolicyFactory
    reps: int
    seed: int = 0
    faults: Optional[FaultProcess] = None
    energy_model: Optional[EnergyModel] = None
    faults_during_overhead: bool = False
    limits: SimulationLimits = field(default_factory=SimulationLimits)

    def __post_init__(self) -> None:
        if self.reps <= 0:
            raise ParameterError(f"reps must be > 0, got {self.reps}")

    def run_block(self, block: int, start: int, stop: int) -> CellAccumulator:
        """Run reps ``[start, stop)`` of this cell into an accumulator.

        Rep ``i`` draws from ``SeedSequence(seed, spawn_key=(i,))``
        whatever the block bounds, so ``block`` is unused here — the
        executor path is deterministic *per rep*, stronger than the
        per-block contract the static fast path provides.
        """
        results = run_range(
            self.task,
            self.policy_factory,
            start=start,
            stop=stop,
            seed=self.seed,
            faults=self.faults,
            energy_model=self.energy_model,
            faults_during_overhead=self.faults_during_overhead,
            limits=self.limits,
        )
        return CellAccumulator().add_all(results)


@dataclass(frozen=True)
class BlockTask:
    """One fixed-size rep block of one job in a batch.

    ``block`` is the absolute block index within the job (``start ==
    block · block_size``); the merge at the coordinator happens in
    ``(job_index, block)`` order regardless of completion order.
    """

    job: object  # CellJob or repro.sim.fastpath.StaticCellJob
    job_index: int
    block: int
    start: int
    stop: int


def execute_block(task: BlockTask) -> CellAccumulator:
    """Worker entry point (module-level so it pickles by reference)."""
    return task.job.run_block(task.block, task.start, task.stop)


def plan_blocks(jobs: Sequence[object], block_size: int) -> List[BlockTask]:
    """Every job's rep range cut into fixed-size blocks, in order."""
    if block_size < 1:
        raise ParameterError(f"block_size must be >= 1, got {block_size}")
    return [
        BlockTask(
            job=job,
            job_index=index,
            block=block,
            start=start,
            stop=min(start + block_size, job.reps),
        )
        for index, job in enumerate(jobs)
        for block, start in enumerate(range(0, job.reps, block_size))
    ]


@runtime_checkable
class ExecutionBackend(Protocol):
    """Anything that can evaluate a batch of block tasks.

    Implementations must return one :class:`~repro.sim.montecarlo.
    CellAccumulator` per task, aligned with the input order (completion
    order is the backend's business; result order is not).  They must
    not perturb the tasks' random streams — all seeding is derived from
    the task payload itself.
    """

    name: str

    def run_tasks(
        self, tasks: Sequence[BlockTask]
    ) -> List[CellAccumulator]:  # pragma: no cover - protocol
        ...

    def close(self) -> None:  # pragma: no cover - protocol
        ...


class SerialBackend:
    """In-process block execution — the reference backend."""

    name = "serial"

    def run_tasks(self, tasks: Sequence[BlockTask]) -> List[CellAccumulator]:
        return [execute_block(task) for task in tasks]

    def close(self) -> None:
        """Nothing to release."""


class ProcessBackend:
    """Block execution over a lazily created, reused process pool.

    Parameters
    ----------
    workers:
        Worker processes; ``None`` means :func:`default_workers`.
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is None:
            workers = default_workers()
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._finalizer: Optional[weakref.finalize] = None

    def close(self) -> None:
        """Shut down the worker pool (idempotent; pool recreates lazily)."""
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._pool = None

    def run_tasks(self, tasks: Sequence[BlockTask]) -> List[CellAccumulator]:
        results: List[Optional[CellAccumulator]] = [None] * len(tasks)
        pooled, local = partition_shippable(tasks)
        futures: List[Tuple[int, Future]] = []
        try:
            for index in pooled:
                futures.append(
                    (index, self._ensure_pool().submit(execute_block, tasks[index]))
                )
        except BrokenExecutor:
            # The pool died while we were still handing it work (e.g. a
            # worker OOM-killed between batches); the unsubmitted tail
            # runs in-process below.
            self.close()
        # Unshippable blocks run in-process *while* the pool works on
        # the submitted ones, so a mixed grid overlaps both phases.
        for index in local:
            results[index] = execute_block(tasks[index])
        for index, future in futures:
            try:
                results[index] = future.result()
            except BrokenExecutor:
                # A dead worker poisons the whole executor; discard it
                # (the next batch gets a fresh one) and recompute this
                # block in-process — the work is deterministic, so the
                # backend must not fail where the serial path would
                # have succeeded.
                self.close()
                results[index] = execute_block(tasks[index])
        for index in pooled[len(futures):]:
            results[index] = execute_block(tasks[index])
        return results  # type: ignore[return-value] - every slot filled

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The lazily-created, reused worker pool.

        Reuse amortises worker startup across batches (``validate``
        runs one batch per table); a ``weakref.finalize`` shuts the
        pool down when the backend is garbage-collected, so callers who
        never bother with :meth:`close` leak nothing.
        """
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
            self._finalizer = weakref.finalize(
                self, ProcessPoolExecutor.shutdown, self._pool, wait=True
            )
        return self._pool


class DistributedBackend:
    """Block execution over the socket transport in
    :mod:`repro.sim.distributed`.

    The off-host contract — what the transport honours and everything
    it may rely on — is:

    * **Payload.**  Tasks pickle: jobs are frozen dataclasses of specs
      and ``functools.partial`` factories over module-level classes.
      Jobs that do *not* pickle (closures) run in-process instead.
    * **Results.**  One accumulator per task, aligned with input order;
      each is O(1) in ``stop - start`` (streaming moments and integer
      counters — never raw observations), so result transport is
      constant-size per block.
    * **Determinism.**  All randomness is re-derived from the task
      payload (cell seed + absolute rep/block index).  A retried,
      re-routed or duplicated block computes the identical accumulator,
      so at-least-once delivery plus idempotent collection is enough.
    * **Merging** happens at the coordinator, in block order — workers
      never need to see each other.
    * **Availability.**  Dead workers have their in-flight tasks
      requeued (bounded retries); with no workers left the remainder is
      recomputed in-process — the backend never fails where
      :class:`SerialBackend` would have succeeded.

    Parameters
    ----------
    url:
        Bind address for the coordinator, ``tcp://host:port`` (default
        loopback with an OS-assigned port).  Remote workers join with
        ``repro worker tcp://<coordinator-host>:<port>``.
    cluster:
        A :class:`~repro.sim.distributed.LocalCluster` (or a worker
        count, shorthand for one) to spawn loopback worker subprocesses
        automatically — the tests/CLI path.  ``None`` means workers are
        started externally against :attr:`coordinator_url`.

    The coordinator and any cluster start lazily on first
    :meth:`run_tasks`; :meth:`close` tears both down and is idempotent
    (a closed backend reopens fresh on the next batch).
    """

    name = "distributed"

    def __init__(
        self,
        url: Optional[str] = None,
        *,
        cluster: Optional[object] = None,
        batch_size: Optional[int] = None,
        max_retries: Optional[int] = None,
        connect_timeout: float = 10.0,
    ) -> None:
        if isinstance(cluster, int):
            from repro.sim.distributed import LocalCluster

            cluster = LocalCluster(cluster)
        self.url = url
        self.cluster = cluster
        self.batch_size = batch_size
        self.max_retries = max_retries
        self.connect_timeout = connect_timeout
        self._coordinator = None

    @property
    def coordinator_url(self) -> Optional[str]:
        """Where workers should connect (None until the first batch)."""
        if self._coordinator is None:
            return None
        return self._coordinator.url

    def run_tasks(self, tasks: Sequence[BlockTask]) -> List[CellAccumulator]:
        tasks = list(tasks)
        if not tasks:
            return []  # nothing to ship: no transport needed either
        return self._ensure_coordinator().run_tasks(tasks)

    def close(self) -> None:
        """Stop the cluster workers and the coordinator (idempotent)."""
        if self.cluster is not None:
            self.cluster.close()
        if self._coordinator is not None:
            self._coordinator.close()
            self._coordinator = None

    def _ensure_coordinator(self):
        if self._coordinator is None:
            from repro.sim.distributed import Coordinator

            kwargs = {}
            if self.batch_size is not None:
                kwargs["batch_size"] = self.batch_size
            if self.max_retries is not None:
                kwargs["max_retries"] = self.max_retries
            self._coordinator = Coordinator(
                self.url or "tcp://127.0.0.1:0", **kwargs
            )
            if self.cluster is not None:
                self.cluster.start(self._coordinator.url)
                connected = self._coordinator.wait_for_workers(
                    self.cluster.size, timeout=self.connect_timeout
                )
                if connected == 0 and self.cluster.size > 0:
                    # An explicitly requested cluster where *nothing*
                    # connected is a broken deployment (bad worker
                    # entry point, wrong secret), not a transient
                    # fault: failing loudly beats silently computing
                    # the whole grid in-process.  Workers dying later
                    # still fall back gracefully.
                    self.close()
                    raise SimulationError(
                        f"none of the {self.cluster.size} cluster workers "
                        f"connected within {self.connect_timeout}s"
                    )
                if connected < self.cluster.size:
                    print(
                        f"repro: warning: only {connected} of "
                        f"{self.cluster.size} cluster workers connected",
                        file=sys.stderr,
                    )
            elif self.url is not None:
                # An explicit URL means external workers are expected;
                # give the first one a moment to join so small batches
                # don't fall back in-process before anyone arrives.
                self._coordinator.wait_for_workers(
                    1, timeout=self.connect_timeout
                )
        return self._coordinator


def make_backend(
    backend,
    *,
    workers: Optional[int] = None,
    cluster_workers: Optional[int] = None,
    url: Optional[str] = None,
):
    """Resolve a backend selector to an :class:`ExecutionBackend`.

    ``backend`` may already be a backend instance (returned as-is) or
    one of :data:`BACKEND_NAMES`:

    * ``"serial"`` — :class:`SerialBackend` (in-process reference).
    * ``"process"`` — :class:`ProcessBackend` over ``workers``
      processes (``None`` = one per CPU).
    * ``"distributed"`` — :class:`DistributedBackend`; with
      ``cluster_workers`` it spawns that many loopback worker
      subprocesses, with ``url`` it binds the coordinator there for
      externally started workers.
    """
    if not isinstance(backend, str):
        if isinstance(backend, ExecutionBackend):
            if workers is not None or cluster_workers or url is not None:
                raise ParameterError(
                    "workers/cluster_workers/url cannot reconfigure an "
                    "already-constructed backend instance; pass them when "
                    "building it, or use a backend name"
                )
            return backend
        raise ParameterError(
            f"backend must be an ExecutionBackend or one of "
            f"{BACKEND_NAMES}, got {backend!r}"
        )
    # Reject topology knobs the chosen backend cannot honour rather
    # than silently dropping them — the CLI layer raises for the same
    # contradictions, and the API must not be looser.
    if backend != "distributed" and (cluster_workers or url is not None):
        raise ParameterError(
            f"cluster_workers/url only apply to backend='distributed', "
            f"not {backend!r}"
        )
    if backend in ("serial", "distributed") and workers is not None:
        raise ParameterError(
            f"workers does not apply to backend={backend!r}"
            + (" (use cluster_workers)" if backend == "distributed" else "")
        )
    if backend == "serial":
        return SerialBackend()
    if backend == "process":
        return ProcessBackend(workers)
    if backend == "distributed":
        cluster = cluster_workers if cluster_workers else None
        return DistributedBackend(url=url, cluster=cluster)
    raise ParameterError(
        f"unknown backend {backend!r}; valid names: {', '.join(BACKEND_NAMES)}"
    )


def _picklable(job: object) -> bool:
    """Whether ``job`` can be shipped to a worker process."""
    try:
        pickle.dumps(job)
        return True
    except Exception:
        return False


def partition_shippable(
    tasks: Sequence[BlockTask],
) -> Tuple[List[int], List[int]]:
    """Split task indices into (shippable, in-process-only).

    The picklability probe is memoised per ``job_index`` — every block
    of a job shares one payload — and is the single fallback-partition
    policy for every off-process backend (the process pool and the
    distributed coordinator both use it), so the "closures run
    in-process" rule cannot drift between them.
    """
    shippable: Dict[int, bool] = {}
    remote: List[int] = []
    local: List[int] = []
    for index, task in enumerate(tasks):
        ok = shippable.get(task.job_index)
        if ok is None:
            ok = _picklable(task.job)
            shippable[task.job_index] = ok
        (remote if ok else local).append(index)
    return remote, local
