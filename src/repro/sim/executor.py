"""Event-driven execution of one checkpointed DMR task run.

:func:`simulate_run` drives a :class:`~repro.core.schemes.CheckpointPolicy`
over one realisation of a fault process and produces a
:class:`RunResult`.  The loop structure mirrors the paper's pseudocode
(figs. 3, 6, 7):

1. abort with *task failure* when the remaining fault-free execution
   time exceeds the remaining deadline (``Rt > Rd`` — line 5/6);
2. execute one CSCP interval, subdivided per the policy's plan:

   * **SCP subdivision** — state is stored at every sub-boundary;
     divergence is detected at the closing CSCP comparison and the pair
     rolls back to the last store preceding the first fault;
   * **CCP subdivision** — states are compared at every sub-boundary;
     divergence is detected at the first comparison after the fault and
     the pair rolls back to the interval's opening CSCP;
   * **plain CSCP** (``m = 1``) — detect at the end, roll back the whole
     interval;

3. on a detected fault: decrement ``Rf``, charge the rollback cost and
   let the policy replan (speed + interval).

Timing and energy: an operation of ``x`` cycles at frequency ``f`` takes
``x/f`` time units and charges the energy model with ``x`` cycles at
``f``.  Fault arrivals live in wall-clock time.  By default faults
landing inside checkpoint overhead windows are ignored — the convention
of the paper's analysis and, empirically, of its simulator (DESIGN.md
§5); set ``faults_during_overhead=True`` to have them corrupt state
too.

Hot path
--------
The interval loop is the per-rep cost of every Monte-Carlo cell, so it
is written against a fixed arithmetic contract: **every float operation
happens in the same order as the reference implementation**, which is
what keeps :class:`RunResult`\\ s (and therefore the block-merged
``CellEstimate``\\ s) bit-identical while the bookkeeping around them
gets cheaper.  Concretely:

* fault arrivals come from the *batched* :class:`~repro.sim.faults.
  FaultStream` (``take_until`` resolves a whole segment's faults in one
  ``searchsorted``) whose arrival values are bit-identical to the
  sequential iterator;
* per-segment energy is ``coef · cycles`` with ``coef = (n·V(f))·V(f)``
  cached per frequency — the exact operation order of
  :meth:`~repro.sim.energy.EnergyModel.segment_energy`, minus the
  per-segment lambda call and dict updates;
* trace callbacks are skipped entirely when the recorder is the
  :data:`~repro.sim.trace.NULL_RECORDER` no-op singleton;
* per-interval scratch (:class:`_Corruption`) is pooled per run, and
  :func:`execute_once` exposes the loop without building a
  :class:`RunResult` (no ``cycles_by_frequency`` dict) for callers that
  only fold counters — the slab path of
  :func:`repro.sim.montecarlo.accumulate_range`.

``benchmarks/bench_executor.py`` tracks the resulting reps/s and CI
fails the perf-smoke job on a >2× regression.

This module is the **exact** kernel: bit-identical run to run, across
every backend and worker count, pinned by the golden-trace replay
suite.  Its vectorised peer is :mod:`repro.sim.kernel` (the opt-in
``kernel="fast"`` mode) — statistically equivalent and roughly an
order of magnitude faster, but block- rather than rep-deterministic;
scenarios it cannot vectorise fall back to this engine per block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from repro.core.checkpoints import CheckpointKind
from repro.errors import ParameterError, SimulationError
from repro.sim.energy import EnergyModel
from repro.sim.faults import FaultProcess, FaultStream
from repro.sim.state import ExecutionState
from repro.sim.task import TaskSpec
from repro.sim.trace import NULL_RECORDER, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.schemes import CheckpointPolicy

__all__ = ["RunResult", "RunOutcome", "SimulationLimits", "simulate_run",
           "execute_once", "default_energy_model"]

#: Work below this many cycles counts as "finished" (guards float drift).
_CYCLE_EPS = 1e-9

#: Minimum meaningful sub-interval span in cycles: ``m`` is clamped so
#: no sub-interval falls below it.  Shared by _effective_subdivisions
#: and its inline copy in the fused loop — the two must stay
#: operation-identical for the traced ≡ fused bit-identity contract.
_MIN_SUB_CYCLES = 1e-6

#: Cached default model — building ``EnergyModel.paper_dmr()`` per run
#: is measurable at Monte-Carlo scale and the instance is immutable.
_DEFAULT_MODEL: Optional[EnergyModel] = None


def default_energy_model() -> EnergyModel:
    """The shared calibrated paper model (one instance per process)."""
    global _DEFAULT_MODEL
    if _DEFAULT_MODEL is None:
        _DEFAULT_MODEL = EnergyModel.paper_dmr()
    return _DEFAULT_MODEL


@dataclass(frozen=True)
class SimulationLimits:
    """Safety bounds for one run.

    ``max_intervals`` bounds the number of CSCP intervals (a run that
    exceeds it raises :class:`SimulationError` — it indicates a bug, not
    a slow task, because the deadline check terminates doomed runs).
    ``horizon_factor`` caps the wall-clock at ``factor × deadline``.
    """

    max_intervals: int = 2_000_000
    horizon_factor: float = 64.0

    def horizon(self, task: TaskSpec) -> float:
        return self.horizon_factor * task.deadline


@dataclass(frozen=True)
class RunResult:
    """Outcome of one simulated task execution."""

    completed: bool
    timely: bool
    finish_time: float
    energy: float
    cycles_executed: float
    cycles_by_frequency: Dict[float, float]
    detected_faults: int
    injected_faults: int
    checkpoints: int
    sub_checkpoints: int
    rollbacks: int
    failure_reason: Optional[str] = None

    @property
    def deadline_met(self) -> bool:
        """Alias for :attr:`timely` (paper's "timely completion")."""
        return self.timely


@dataclass(slots=True)
class RunOutcome:
    """The accumulator-facing subset of a run's outcome.

    What :func:`execute_once` returns: everything a
    :class:`~repro.sim.montecarlo.CellAccumulator` folds, nothing it
    does not (no per-frequency cycle map, no failure taxonomy) — the
    payload the slab path writes straight into NumPy scratch arrays.
    (A slotted, non-frozen dataclass: it is created once per rep.)
    """

    completed: bool
    timely: bool
    finish_time: float
    energy: float
    detected_faults: int
    injected_faults: int
    checkpoints: int
    sub_checkpoints: int
    rollbacks: int


class _Corruption:
    """Tracks state divergence since the last consistent point.

    Pooled per run (two instances cover the working corruption and the
    rollback-window carry) instead of allocated per interval.
    """

    __slots__ = ("first_fault_time", "count")

    def __init__(self) -> None:
        self.first_fault_time: Optional[float] = None
        self.count = 0

    def reset(self) -> None:
        self.first_fault_time = None
        self.count = 0

    def record(self, time: float) -> None:
        if self.first_fault_time is None:
            self.first_fault_time = time
        self.count += 1

    def record_many(self, times) -> None:
        """Fold a segment's arrivals (ordered, non-empty) in one call."""
        if self.first_fault_time is None:
            self.first_fault_time = float(times[0])
        self.count += len(times)

    @property
    def corrupted(self) -> bool:
        return self.first_fault_time is not None


class _Environment:
    """Per-run context threaded through the interval runner.

    Owns the cached head of the fault stream (``next_fault``) so the
    common no-fault segment costs one float compare, the per-frequency
    energy coefficients, and the running totals the loop updates.
    """

    __slots__ = (
        "state",
        "stream",
        "recorder",
        "tracing",
        "overhead_corrupting",
        "next_fault",
        "energy",
        "cycles_map",
        "coef",
        "coef_freq",
        "_coefs",
        "_voltage_of",
        "_nproc",
    )

    def __init__(
        self,
        state: ExecutionState,
        stream: FaultStream,
        model: EnergyModel,
        faults_during_overhead: bool,
        recorder: TraceRecorder,
        cycles_map: Optional[Dict[float, float]],
    ) -> None:
        self.state = state
        self.stream = stream
        self.recorder = recorder
        self.tracing = recorder is not NULL_RECORDER
        self.overhead_corrupting = faults_during_overhead
        self.next_fault = stream.peek()
        self.energy = 0.0
        self.cycles_map = cycles_map
        self._voltage_of = model.voltage_of
        self._nproc = model.n_processors
        self._coefs: Dict[float, float] = {}
        self.coef = 0.0
        self.coef_freq = -1.0  # sentinel: no frequency is negative

    def _coefficient(self, frequency: float) -> float:
        """Energy per cycle at ``frequency`` — ``(n·V(f))·V(f)``.

        Exactly :meth:`EnergyModel.segment_energy`'s operation order
        (``n * v * v * cycles`` associates left), so ``coef * cycles``
        is bit-identical to the per-segment computation.
        """
        coef = self._coefs.get(frequency)
        if coef is None:
            voltage = self._voltage_of(frequency)
            coef = self._nproc * voltage * voltage
            self._coefs[frequency] = coef
        self.coef = coef
        self.coef_freq = frequency
        return coef

    def advance(
        self, cycles: float, corruption: _Corruption, corrupting: bool, label: str
    ) -> None:
        """Advance time by ``cycles`` at the current speed; resolve faults."""
        if cycles == 0.0:
            return
        if cycles < 0:
            raise ParameterError(f"cannot advance by negative cycles: {cycles}")
        state = self.state
        frequency = state.frequency
        start = state.clock
        end = start + cycles / frequency
        if self.next_fault <= end:
            times = self.stream.take_until(end)
            state.injected_faults += len(times)
            if self.tracing:
                recorder = self.recorder
                for time in times:
                    recorder.fault(float(time), corrupting=corrupting)
            if corrupting and len(times):
                corruption.record_many(times)
            self.next_fault = self.stream.peek()
        state.clock = end
        coef = self.coef if frequency == self.coef_freq else self._coefficient(frequency)
        self.energy += coef * cycles
        cycles_map = self.cycles_map
        if cycles_map is not None:
            cycles_map[frequency] = cycles_map.get(frequency, 0.0) + cycles
        if self.tracing:
            self.recorder.segment(label, frequency, start, end, cycles)


def simulate_run(
    task: TaskSpec,
    policy: "CheckpointPolicy",
    faults: FaultProcess,
    energy_model: Optional[EnergyModel] = None,
    rng: Optional[np.random.Generator] = None,
    *,
    faults_during_overhead: bool = False,
    limits: SimulationLimits = SimulationLimits(),
    recorder: TraceRecorder = NULL_RECORDER,
    reference: bool = False,
) -> RunResult:
    """Simulate one execution of ``task`` under ``policy``.

    Parameters
    ----------
    task:
        The task to execute.
    policy:
        Checkpointing scheme; a *fresh* policy instance should be used
        per run (policies cache their plan).
    faults:
        Fault-arrival process; one realisation is drawn via ``rng``.
    energy_model:
        Defaults to the calibrated paper model
        (:meth:`EnergyModel.paper_dmr`).
    rng:
        NumPy generator for the fault stream (unused by
        :class:`~repro.sim.faults.ScriptedFaults`).
    faults_during_overhead:
        Whether faults arriving during checkpoint/rollback overhead
        corrupt state (default ``False``; see module docstring).
    limits:
        Safety bounds.
    recorder:
        Optional :class:`~repro.sim.trace.TraceRecorder`.
    reference:
        Force the traced *reference* loop even without a recorder.
        Attaching any recorder already routes there; this knob lets
        callers (the golden-trace replay engine, loop-equivalence
        tests) pin the reference arithmetic path explicitly instead of
        encoding "recorder implies reference" as an assumption.
    """
    if energy_model is None:
        energy_model = default_energy_model()
    if rng is None:
        rng = np.random.default_rng()

    cycles_map: Dict[float, float] = {}
    state, energy, failure = _execute(
        task,
        policy,
        faults.stream(rng),
        energy_model,
        faults_during_overhead,
        limits,
        recorder,
        cycles_map,
        reference=reference,
    )
    completed = state.remaining_cycles <= _CYCLE_EPS
    timely = completed and state.clock <= task.deadline + _CYCLE_EPS
    return RunResult(
        completed=completed,
        timely=timely,
        finish_time=state.clock,
        energy=energy,
        cycles_executed=sum(cycles_map.values()),
        cycles_by_frequency=cycles_map,
        detected_faults=state.detected_faults,
        injected_faults=state.injected_faults,
        checkpoints=state.checkpoints,
        sub_checkpoints=state.sub_checkpoints,
        rollbacks=state.rollbacks,
        failure_reason=None if completed else failure,
    )


def execute_once(
    task: TaskSpec,
    policy: "CheckpointPolicy",
    faults: FaultProcess,
    energy_model: Optional[EnergyModel] = None,
    rng: Optional[np.random.Generator] = None,
    *,
    faults_during_overhead: bool = False,
    limits: SimulationLimits = SimulationLimits(),
) -> RunOutcome:
    """One run, returning only what the accumulators fold.

    The slab-path twin of :func:`simulate_run`: identical simulation
    (bit-for-bit — same stream, same arithmetic), but no
    ``cycles_by_frequency`` dict is maintained and no
    :class:`RunResult`/failure taxonomy is built, which is measurable
    at 10,000-rep cell scale.
    """
    if energy_model is None:
        energy_model = default_energy_model()
    if rng is None:
        rng = np.random.default_rng()
    state, energy, _failure = _execute(
        task,
        policy,
        faults.stream(rng),
        energy_model,
        faults_during_overhead,
        limits,
        NULL_RECORDER,
        None,
    )
    completed = state.remaining_cycles <= _CYCLE_EPS
    timely = completed and state.clock <= task.deadline + _CYCLE_EPS
    return RunOutcome(
        completed=completed,
        timely=timely,
        finish_time=state.clock,
        energy=energy,
        detected_faults=state.detected_faults,
        injected_faults=state.injected_faults,
        checkpoints=state.checkpoints,
        sub_checkpoints=state.sub_checkpoints,
        rollbacks=state.rollbacks,
    )


def _execute(
    task: TaskSpec,
    policy: "CheckpointPolicy",
    stream: FaultStream,
    energy_model: EnergyModel,
    faults_during_overhead: bool,
    limits: SimulationLimits,
    recorder: TraceRecorder,
    cycles_map: Optional[Dict[float, float]],
    *,
    reference: bool = False,
) -> Tuple[ExecutionState, float, Optional[str]]:
    """Run the interval loop; returns ``(state, energy, failure)``.

    Dispatches between two implementations with identical arithmetic:
    the traced path (per-segment recorder callbacks, object-based
    bookkeeping) and the fused Monte-Carlo hot path (everything in
    locals, no per-segment calls) taken whenever no recorder is
    attached and ``reference`` is not forced.
    ``tests/test_executor_slab.py`` pins their bit-equality.
    """
    if recorder is NULL_RECORDER and not reference:
        return _execute_fast(
            task, policy, stream, energy_model, faults_during_overhead,
            limits, cycles_map,
        )
    return _execute_traced(
        task, policy, stream, energy_model, faults_during_overhead,
        limits, recorder, cycles_map,
    )


def _execute_traced(
    task: TaskSpec,
    policy: "CheckpointPolicy",
    stream: FaultStream,
    energy_model: EnergyModel,
    faults_during_overhead: bool,
    limits: SimulationLimits,
    recorder: TraceRecorder,
    cycles_map: Optional[Dict[float, float]],
) -> Tuple[ExecutionState, float, Optional[str]]:
    """The reference interval loop, with trace callbacks."""
    state = ExecutionState.fresh(task)
    env = _Environment(
        state, stream, energy_model, faults_during_overhead, recorder, cycles_map
    )
    policy.start(state)
    tracing = env.tracing
    if tracing:
        recorder.speed(state.clock, state.frequency)

    failure: Optional[str] = None
    # Pooled corruption trackers: `carried` aliases one of them (or is
    # None) and the other is free for the next rollback window.
    corr_a = _Corruption()
    corr_b = _Corruption()
    carried: Optional[_Corruption] = None
    intervals = 0
    max_intervals = limits.max_intervals
    horizon = limits.horizon(task)
    while state.remaining_cycles > _CYCLE_EPS:
        intervals += 1
        if intervals > max_intervals:
            raise SimulationError(
                f"run exceeded {max_intervals} CSCP intervals; "
                "policy/executor inconsistency"
            )
        if state.remaining_time > state.deadline_left:
            failure = "deadline_infeasible"
            break
        if state.clock > horizon:
            failure = "horizon"
            break

        plan = policy.plan(state)
        if carried is None:
            corruption = corr_a
            corruption.reset()
            spare = corr_b
        else:
            # A rollback window corrupted the restored state: it
            # poisons this attempt, whose comparison will detect it.
            corruption = carried
            spare = corr_a if carried is corr_b else corr_b
        committed, detected = _run_interval(env, plan, corruption, spare)
        carried = spare if detected and spare.corrupted else None
        state.remaining_cycles -= committed
        if detected:
            state.detected_faults += 1
            state.rollbacks += 1
            state.faults_left -= 1
            previous_frequency = state.frequency
            policy.on_fault(state)
            if tracing and state.frequency != previous_frequency:
                recorder.speed(state.clock, state.frequency)

    completed = state.remaining_cycles <= _CYCLE_EPS
    if completed:
        failure = None
    elif failure is None:
        failure = "deadline_infeasible"
    if tracing:
        timely = completed and state.clock <= task.deadline + _CYCLE_EPS
        recorder.finish(state.clock, completed=completed, timely=timely)
    return state, env.energy, failure


def _run_interval(
    env: _Environment, plan, corruption: _Corruption, spare: _Corruption
) -> Tuple[float, bool]:
    """Execute one CSCP interval according to ``plan``.

    ``corruption`` is the working tracker (possibly carrying corruption
    inherited from a preceding rollback window); ``spare`` is the free
    pooled tracker a rollback window may write into.  Returns
    ``(committed_cycles, detected)`` — the rollback cost is already
    charged when a fault was detected.
    """
    state = env.state
    costs = state.task.costs
    frequency = state.frequency

    interval_cycles = min(plan.interval_time * frequency, state.remaining_cycles)
    m = _effective_subdivisions(plan.m, interval_cycles)
    sub_cycles = interval_cycles / m
    sub_kind: CheckpointKind = plan.sub_kind

    tracing = env.tracing
    overhead_corrupting = env.overhead_corrupting
    advance = env.advance
    clean_boundary = 0  # index of last sub-boundary with consistent stored state

    for index in range(1, m + 1):
        advance(sub_cycles, corruption, True, "exec")
        if index < m:
            state.sub_checkpoints += 1
            if sub_kind is CheckpointKind.SCP:
                # Store without comparing: detection waits for the CSCP.
                advance(costs.store_cycles, corruption, overhead_corrupting, "scp")
                if tracing:
                    env.recorder.checkpoint(state.clock, CheckpointKind.SCP)
                if not corruption.corrupted:
                    clean_boundary = index
            elif sub_kind is CheckpointKind.CCP:
                advance(costs.compare_cycles, corruption, overhead_corrupting, "ccp")
                if tracing:
                    env.recorder.checkpoint(state.clock, CheckpointKind.CCP)
                if corruption.corrupted:
                    # Early detection: roll back to the opening CSCP.
                    _detect(env, spare, committed=0.0)
                    return 0.0, True
            else:
                # Interior CSCP: compare AND store — detect early, and a
                # clean pass becomes the new rollback target.
                advance(
                    costs.checkpoint_cycles, corruption, overhead_corrupting, "cscp"
                )
                if tracing:
                    env.recorder.checkpoint(state.clock, CheckpointKind.CSCP)
                if corruption.corrupted:
                    committed = clean_boundary * sub_cycles
                    _detect(env, spare, committed=committed)
                    return committed, True
                clean_boundary = index

    # Closing CSCP: compare (detects any divergence) and store.
    advance(costs.checkpoint_cycles, corruption, overhead_corrupting, "cscp")
    state.checkpoints += 1
    if tracing:
        env.recorder.checkpoint(state.clock, CheckpointKind.CSCP)

    if corruption.corrupted:
        if sub_kind is CheckpointKind.SCP:
            committed = clean_boundary * sub_cycles
        else:
            committed = 0.0
        _detect(env, spare, committed=committed)
        return committed, True

    return interval_cycles, False


def _execute_fast(
    task: TaskSpec,
    policy: "CheckpointPolicy",
    stream: FaultStream,
    energy_model: EnergyModel,
    overhead_corrupting: bool,
    limits: SimulationLimits,
    cycles_map: Optional[Dict[float, float]],
) -> Tuple[ExecutionState, float, Optional[str]]:
    """The fused Monte-Carlo hot loop — :func:`_execute_traced` with
    the per-segment advance and per-interval runner inlined.

    Identical arithmetic in identical order — ``end = clock +
    cycles/f``, ``energy += coef·cycles``, the same fault consumption —
    but on local variables, with no per-segment or per-interval
    function calls.  The :class:`ExecutionState` is synchronised before
    every policy callback (``plan``; ``on_fault`` on detection) and on
    exit, so policies observe exactly the state the reference loop
    shows them.  Policies declaring ``plan_stable`` (every in-repo
    scheme) are asked for their plan only at start and after each
    fault; the plan-derived per-interval constants are cached in
    between.
    """
    state = ExecutionState.fresh(task)
    policy.start(state)

    costs = task.costs
    store_cycles = costs.store_cycles
    compare_cycles = costs.compare_cycles
    checkpoint_cycles = costs.checkpoint_cycles
    rollback_cycles = costs.rollback_cycles
    if (
        store_cycles < 0
        or compare_cycles < 0
        or checkpoint_cycles < 0
        or rollback_cycles < 0
    ):
        raise ParameterError("cannot advance by negative cycles")
    voltage_of = energy_model.voltage_of
    n_processors = energy_model.n_processors
    deadline = task.deadline
    horizon = limits.horizon(task)
    max_intervals = limits.max_intervals
    drain_until = stream.drain_until
    plan_of = policy.plan
    plan_stable = getattr(policy, "plan_stable", False)
    kind_scp = CheckpointKind.SCP
    kind_ccp = CheckpointKind.CCP

    # Hoisted mutable run state (synced to ``state`` at policy
    # boundaries and on exit).
    clock = state.clock
    remaining = state.remaining_cycles
    faults_left = state.faults_left
    injected = 0
    detected = 0
    checkpoints = 0
    subs = 0
    rollbacks = 0
    energy = 0.0
    next_fault = stream.peek()
    frequency = state.frequency
    voltage = voltage_of(frequency)
    coef = n_processors * voltage * voltage  # segment_energy's op order
    coefs: Dict[float, float] = {frequency: coef}
    #: Fault time carried out of a corrupting rollback window (only
    #: with ``faults_during_overhead``); poisons the next interval.
    carried_fault: Optional[float] = None
    failure: Optional[str] = None
    intervals = 0
    # Plan-derived constants, recomputed whenever the plan may have
    # changed (every interval unless the policy declares plan_stable).
    need_plan = True
    interval_full = 0.0
    m_full = 1
    sub_full = 0.0
    plan_m = 1
    is_scp = False
    is_ccp = False

    while remaining > _CYCLE_EPS:
        intervals += 1
        if intervals > max_intervals:
            raise SimulationError(
                f"run exceeded {max_intervals} CSCP intervals; "
                "policy/executor inconsistency"
            )
        if remaining / frequency > deadline - clock:
            failure = "deadline_infeasible"
            break
        if clock > horizon:
            failure = "horizon"
            break

        if need_plan:
            need_plan = not plan_stable
            state.clock = clock
            state.remaining_cycles = remaining
            state.injected_faults = injected
            state.checkpoints = checkpoints
            state.sub_checkpoints = subs
            plan = plan_of(state)
            if state.frequency != frequency:
                frequency = state.frequency
                coef = coefs.get(frequency)
                if coef is None:
                    voltage = voltage_of(frequency)
                    coef = n_processors * voltage * voltage
                    coefs[frequency] = coef
            interval_full = plan.interval_time * frequency
            if interval_full < 0:
                raise ParameterError(
                    f"cannot advance by negative cycles: {interval_full}"
                )
            plan_m = plan.m
            m_full = _effective_subdivisions(plan_m, interval_full)
            sub_full = interval_full / m_full
            sub_kind = plan.sub_kind
            is_scp = sub_kind is kind_scp
            is_ccp = sub_kind is kind_ccp

        if remaining < interval_full:
            # The tail interval: clamp to the remaining work
            # (_effective_subdivisions, inline).
            interval_cycles = remaining
            m = plan_m
            if interval_cycles <= 0:
                m = 1
            else:
                largest = int(interval_cycles / _MIN_SUB_CYCLES)
                if largest < 1:
                    largest = 1
                if m > largest:
                    m = largest
                if m < 1:
                    m = 1
            sub_cycles = interval_cycles / m
        else:
            interval_cycles = interval_full
            m = m_full
            sub_cycles = sub_full

        first_fault = carried_fault
        carried_fault = None
        committed = -1.0  # sentinel: no detection
        clean_boundary = 0  # last sub-boundary with consistent stored state

        if m == 1:
            # Plain-CSCP interval (the A_D and static schemes, and any
            # unsubdivided adaptive interval): one execution segment
            # and the closing CSCP, no sub-boundary machinery.
            if sub_cycles != 0.0:
                end = clock + sub_cycles / frequency
                if next_fault <= end:
                    times, next_fault = drain_until(end)
                    injected += len(times)
                    if first_fault is None:
                        first_fault = times[0]
                clock = end
                energy += coef * sub_cycles
                if cycles_map is not None:
                    cycles_map[frequency] = (
                        cycles_map.get(frequency, 0.0) + sub_cycles
                    )
            if checkpoint_cycles != 0.0:
                end = clock + checkpoint_cycles / frequency
                if next_fault <= end:
                    times, next_fault = drain_until(end)
                    injected += len(times)
                    if overhead_corrupting and first_fault is None:
                        first_fault = times[0]
                clock = end
                energy += coef * checkpoint_cycles
                if cycles_map is not None:
                    cycles_map[frequency] = (
                        cycles_map.get(frequency, 0.0) + checkpoint_cycles
                    )
            checkpoints += 1
            if first_fault is None:
                remaining -= interval_cycles
                continue
            # clean_boundary is 0, so the SCP rollback target and the
            # plain-CSCP one coincide: nothing was committed.
            committed = 0.0
        else:
            for index in range(1, m + 1):
                # -- execute one sub-interval (always corrupting) -----
                if sub_cycles != 0.0:
                    end = clock + sub_cycles / frequency
                    if next_fault <= end:
                        times, next_fault = drain_until(end)
                        injected += len(times)
                        if first_fault is None:
                            first_fault = times[0]
                    clock = end
                    energy += coef * sub_cycles
                    if cycles_map is not None:
                        cycles_map[frequency] = (
                            cycles_map.get(frequency, 0.0) + sub_cycles
                        )
                if index < m:
                    subs += 1
                    if is_scp:
                        # Store without comparing: detection waits for
                        # the closing CSCP.
                        if store_cycles != 0.0:
                            end = clock + store_cycles / frequency
                            if next_fault <= end:
                                times, next_fault = drain_until(end)
                                injected += len(times)
                                if overhead_corrupting and first_fault is None:
                                    first_fault = times[0]
                            clock = end
                            energy += coef * store_cycles
                            if cycles_map is not None:
                                cycles_map[frequency] = (
                                    cycles_map.get(frequency, 0.0)
                                    + store_cycles
                                )
                        if first_fault is None:
                            clean_boundary = index
                    elif is_ccp:
                        if compare_cycles != 0.0:
                            end = clock + compare_cycles / frequency
                            if next_fault <= end:
                                times, next_fault = drain_until(end)
                                injected += len(times)
                                if overhead_corrupting and first_fault is None:
                                    first_fault = times[0]
                            clock = end
                            energy += coef * compare_cycles
                            if cycles_map is not None:
                                cycles_map[frequency] = (
                                    cycles_map.get(frequency, 0.0)
                                    + compare_cycles
                                )
                        if first_fault is not None:
                            # Early detection: roll back to the opening
                            # CSCP.
                            committed = 0.0
                            break
                    else:
                        # Interior CSCP: compare AND store — detect
                        # early, and a clean pass becomes the new
                        # rollback target.
                        if checkpoint_cycles != 0.0:
                            end = clock + checkpoint_cycles / frequency
                            if next_fault <= end:
                                times, next_fault = drain_until(end)
                                injected += len(times)
                                if overhead_corrupting and first_fault is None:
                                    first_fault = times[0]
                            clock = end
                            energy += coef * checkpoint_cycles
                            if cycles_map is not None:
                                cycles_map[frequency] = (
                                    cycles_map.get(frequency, 0.0)
                                    + checkpoint_cycles
                                )
                        if first_fault is not None:
                            committed = clean_boundary * sub_cycles
                            break
                        clean_boundary = index
            else:
                # -- closing CSCP: compare (detects divergence), store
                if checkpoint_cycles != 0.0:
                    end = clock + checkpoint_cycles / frequency
                    if next_fault <= end:
                        times, next_fault = drain_until(end)
                        injected += len(times)
                        if overhead_corrupting and first_fault is None:
                            first_fault = times[0]
                    clock = end
                    energy += coef * checkpoint_cycles
                    if cycles_map is not None:
                        cycles_map[frequency] = (
                            cycles_map.get(frequency, 0.0) + checkpoint_cycles
                        )
                checkpoints += 1
                if first_fault is not None:
                    committed = clean_boundary * sub_cycles if is_scp else 0.0

            if committed < 0.0:
                remaining -= interval_cycles
                continue

        # -- detection: charge the rollback, let the policy react -----
        remaining -= committed
        if rollback_cycles != 0.0:
            end = clock + rollback_cycles / frequency
            if next_fault <= end:
                times, next_fault = drain_until(end)
                injected += len(times)
                if overhead_corrupting:
                    # Corrupts the freshly restored state: carried into
                    # the next attempt, whose comparison detects it.
                    carried_fault = times[0]
            clock = end
            energy += coef * rollback_cycles
            if cycles_map is not None:
                cycles_map[frequency] = (
                    cycles_map.get(frequency, 0.0) + rollback_cycles
                )
        detected += 1
        rollbacks += 1
        faults_left -= 1
        state.clock = clock
        state.remaining_cycles = remaining
        state.faults_left = faults_left
        state.detected_faults = detected
        state.rollbacks = rollbacks
        state.injected_faults = injected
        state.checkpoints = checkpoints
        state.sub_checkpoints = subs
        policy.on_fault(state)
        need_plan = True
        if state.frequency != frequency:
            frequency = state.frequency
            coef = coefs.get(frequency)
            if coef is None:
                voltage = voltage_of(frequency)
                coef = n_processors * voltage * voltage
                coefs[frequency] = coef

    state.clock = clock
    state.remaining_cycles = remaining
    state.faults_left = faults_left
    state.detected_faults = detected
    state.rollbacks = rollbacks
    state.injected_faults = injected
    state.checkpoints = checkpoints
    state.sub_checkpoints = subs
    completed = remaining <= _CYCLE_EPS
    if completed:
        failure = None
    elif failure is None:
        failure = "deadline_infeasible"
    return state, energy, failure


def _detect(env: _Environment, spare: _Corruption, *, committed: float) -> None:
    """Charge the rollback of a failed interval.

    Faults arriving *during* the rollback operation (possible only with
    ``faults_during_overhead``) corrupt the freshly restored state; they
    are tracked in ``spare`` and — when present — carried into the next
    attempt by the caller.
    """
    spare.reset()
    env.advance(
        env.state.task.costs.rollback_cycles,
        spare,
        env.overhead_corrupting,
        "rollback",
    )
    if env.tracing:
        env.recorder.rollback(env.state.clock, committed)


def _effective_subdivisions(m: int, interval_cycles: float) -> int:
    """Clamp ``m`` so every sub-interval spans a meaningful cycle count."""
    if interval_cycles <= 0:
        return 1
    largest = max(1, int(interval_cycles / _MIN_SUB_CYCLES))
    return max(1, min(m, largest))
