"""Event-driven execution of one checkpointed DMR task run.

:func:`simulate_run` drives a :class:`~repro.core.schemes.CheckpointPolicy`
over one realisation of a fault process and produces a
:class:`RunResult`.  The loop structure mirrors the paper's pseudocode
(figs. 3, 6, 7):

1. abort with *task failure* when the remaining fault-free execution
   time exceeds the remaining deadline (``Rt > Rd`` — line 5/6);
2. execute one CSCP interval, subdivided per the policy's plan:

   * **SCP subdivision** — state is stored at every sub-boundary;
     divergence is detected at the closing CSCP comparison and the pair
     rolls back to the last store preceding the first fault;
   * **CCP subdivision** — states are compared at every sub-boundary;
     divergence is detected at the first comparison after the fault and
     the pair rolls back to the interval's opening CSCP;
   * **plain CSCP** (``m = 1``) — detect at the end, roll back the whole
     interval;

3. on a detected fault: decrement ``Rf``, charge the rollback cost and
   let the policy replan (speed + interval).

Timing and energy: an operation of ``x`` cycles at frequency ``f`` takes
``x/f`` time units and charges the energy model with ``x`` cycles at
``f``.  Fault arrivals live in wall-clock time.  By default faults
landing inside checkpoint overhead windows are ignored — the convention
of the paper's analysis and, empirically, of its simulator (DESIGN.md
§5); set ``faults_during_overhead=True`` to have them corrupt state
too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.core.checkpoints import CheckpointKind
from repro.errors import ParameterError, SimulationError
from repro.sim.energy import EnergyAccount, EnergyModel
from repro.sim.faults import FaultProcess, FaultStream
from repro.sim.state import ExecutionState
from repro.sim.task import TaskSpec
from repro.sim.trace import NULL_RECORDER, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.schemes import CheckpointPolicy

__all__ = ["RunResult", "SimulationLimits", "simulate_run"]

#: Work below this many cycles counts as "finished" (guards float drift).
_CYCLE_EPS = 1e-9


@dataclass(frozen=True)
class SimulationLimits:
    """Safety bounds for one run.

    ``max_intervals`` bounds the number of CSCP intervals (a run that
    exceeds it raises :class:`SimulationError` — it indicates a bug, not
    a slow task, because the deadline check terminates doomed runs).
    ``horizon_factor`` caps the wall-clock at ``factor × deadline``.
    """

    max_intervals: int = 2_000_000
    horizon_factor: float = 64.0

    def horizon(self, task: TaskSpec) -> float:
        return self.horizon_factor * task.deadline


@dataclass(frozen=True)
class RunResult:
    """Outcome of one simulated task execution."""

    completed: bool
    timely: bool
    finish_time: float
    energy: float
    cycles_executed: float
    cycles_by_frequency: Dict[float, float]
    detected_faults: int
    injected_faults: int
    checkpoints: int
    sub_checkpoints: int
    rollbacks: int
    failure_reason: Optional[str] = None

    @property
    def deadline_met(self) -> bool:
        """Alias for :attr:`timely` (paper's "timely completion")."""
        return self.timely


@dataclass
class _Corruption:
    """Tracks state divergence since the last consistent point."""

    first_fault_time: Optional[float] = None
    count: int = 0

    def record(self, time: float) -> None:
        if self.first_fault_time is None:
            self.first_fault_time = time
        self.count += 1

    @property
    def corrupted(self) -> bool:
        return self.first_fault_time is not None


@dataclass
class _Interval:
    """Bookkeeping for executing one CSCP interval."""

    committed_cycles: float = 0.0
    detected: bool = False
    corruption: _Corruption = field(default_factory=_Corruption)
    #: Corruption introduced during the rollback overhead itself (only
    #: possible with ``faults_during_overhead``); it poisons the *next*
    #: attempt, whose comparison will detect it.
    carry: Optional[_Corruption] = None


def simulate_run(
    task: TaskSpec,
    policy: "CheckpointPolicy",
    faults: FaultProcess,
    energy_model: Optional[EnergyModel] = None,
    rng: Optional[np.random.Generator] = None,
    *,
    faults_during_overhead: bool = False,
    limits: SimulationLimits = SimulationLimits(),
    recorder: TraceRecorder = NULL_RECORDER,
) -> RunResult:
    """Simulate one execution of ``task`` under ``policy``.

    Parameters
    ----------
    task:
        The task to execute.
    policy:
        Checkpointing scheme; a *fresh* policy instance should be used
        per run (policies cache their plan).
    faults:
        Fault-arrival process; one realisation is drawn via ``rng``.
    energy_model:
        Defaults to the calibrated paper model
        (:meth:`EnergyModel.paper_dmr`).
    rng:
        NumPy generator for the fault stream (unused by
        :class:`~repro.sim.faults.ScriptedFaults`).
    faults_during_overhead:
        Whether faults arriving during checkpoint/rollback overhead
        corrupt state (default ``False``; see module docstring).
    limits:
        Safety bounds.
    recorder:
        Optional :class:`~repro.sim.trace.TraceRecorder`.
    """
    if energy_model is None:
        energy_model = EnergyModel.paper_dmr()
    if rng is None:
        rng = np.random.default_rng()

    stream = faults.stream(rng)
    state = ExecutionState.fresh(task)
    account = EnergyAccount(energy_model)
    env = _Environment(
        state=state,
        account=account,
        stream=stream,
        faults_during_overhead=faults_during_overhead,
        recorder=recorder,
    )

    policy.start(state)
    recorder.speed(state.clock, state.frequency)

    failure: Optional[str] = None
    carried: Optional[_Corruption] = None
    intervals = 0
    while state.remaining_cycles > _CYCLE_EPS:
        intervals += 1
        if intervals > limits.max_intervals:
            raise SimulationError(
                f"run exceeded {limits.max_intervals} CSCP intervals; "
                "policy/executor inconsistency"
            )
        if state.remaining_time > state.deadline_left:
            failure = "deadline_infeasible"
            break
        if state.clock > limits.horizon(task):
            failure = "horizon"
            break

        plan = policy.plan(state)
        outcome = _run_interval(env, plan, carried)
        carried = outcome.carry
        state.remaining_cycles -= outcome.committed_cycles
        if outcome.detected:
            state.detected_faults += 1
            state.rollbacks += 1
            state.faults_left -= 1
            previous_frequency = state.frequency
            policy.on_fault(state)
            if state.frequency != previous_frequency:
                recorder.speed(state.clock, state.frequency)

    completed = state.remaining_cycles <= _CYCLE_EPS
    timely = completed and state.clock <= task.deadline + _CYCLE_EPS
    if completed:
        failure = None
    elif failure is None:
        failure = "deadline_infeasible"
    recorder.finish(state.clock, completed=completed, timely=timely)

    return RunResult(
        completed=completed,
        timely=timely,
        finish_time=state.clock,
        energy=account.total,
        cycles_executed=account.total_cycles,
        cycles_by_frequency=dict(account.cycles_by_frequency),
        detected_faults=state.detected_faults,
        injected_faults=state.injected_faults,
        checkpoints=state.checkpoints,
        sub_checkpoints=state.sub_checkpoints,
        rollbacks=state.rollbacks,
        failure_reason=None if completed else failure,
    )


@dataclass
class _Environment:
    """Bundles the per-run context threaded through the interval runner."""

    state: ExecutionState
    account: EnergyAccount
    stream: FaultStream
    faults_during_overhead: bool
    recorder: TraceRecorder

    def advance_execution(self, cycles: float, corruption: _Corruption) -> None:
        """Advance time executing useful work; faults corrupt state."""
        self._advance(cycles, corruption, corrupting=True, label="exec")

    def advance_overhead(
        self, cycles: float, corruption: _Corruption, label: str
    ) -> None:
        """Advance time on checkpoint/rollback overhead."""
        self._advance(
            cycles, corruption, corrupting=self.faults_during_overhead, label=label
        )

    def _advance(
        self, cycles: float, corruption: _Corruption, *, corrupting: bool, label: str
    ) -> None:
        if cycles < 0:
            raise ParameterError(f"cannot advance by negative cycles: {cycles}")
        if cycles == 0:
            return
        state = self.state
        frequency = state.frequency
        start = state.clock
        end = start + cycles / frequency
        while self.stream.peek() <= end:
            fault_time = self.stream.pop()
            state.injected_faults += 1
            self.recorder.fault(fault_time, corrupting=corrupting)
            if corrupting:
                corruption.record(fault_time)
        state.clock = end
        self.account.charge(frequency, cycles)
        self.recorder.segment(label, frequency, start, end, cycles)


def _run_interval(
    env: _Environment, plan, carried: Optional[_Corruption] = None
) -> _Interval:
    """Execute one CSCP interval according to ``plan``.

    ``carried`` is corruption inherited from a preceding rollback window
    (see :class:`_Interval`).  Returns the committed work and whether a
    fault was detected (the rollback cost is already charged when it
    was).
    """
    state = env.state
    costs = state.task.costs
    frequency = state.frequency

    interval_cycles = min(plan.interval_time * frequency, state.remaining_cycles)
    m = _effective_subdivisions(plan.m, interval_cycles)
    sub_cycles = interval_cycles / m
    sub_kind: CheckpointKind = plan.sub_kind

    outcome = _Interval()
    if carried is not None and carried.corrupted:
        outcome.corruption = carried
    corruption = outcome.corruption
    clean_boundary = 0  # index of last sub-boundary with consistent stored state

    for index in range(1, m + 1):
        env.advance_execution(sub_cycles, corruption)
        if index < m:
            state.sub_checkpoints += 1
            if sub_kind is CheckpointKind.SCP:
                # Store without comparing: detection waits for the CSCP.
                env.advance_overhead(costs.store_cycles, corruption, "scp")
                env.recorder.checkpoint(state.clock, CheckpointKind.SCP)
                if not corruption.corrupted:
                    clean_boundary = index
            elif sub_kind is CheckpointKind.CCP:
                env.advance_overhead(costs.compare_cycles, corruption, "ccp")
                env.recorder.checkpoint(state.clock, CheckpointKind.CCP)
                if corruption.corrupted:
                    # Early detection: roll back to the opening CSCP.
                    _detect(env, outcome, committed=0.0)
                    return outcome
            else:
                # Interior CSCP: compare AND store — detect early, and a
                # clean pass becomes the new rollback target.
                env.advance_overhead(costs.checkpoint_cycles, corruption, "cscp")
                env.recorder.checkpoint(state.clock, CheckpointKind.CSCP)
                if corruption.corrupted:
                    _detect(
                        env, outcome, committed=clean_boundary * sub_cycles
                    )
                    return outcome
                clean_boundary = index

    # Closing CSCP: compare (detects any divergence) and store.
    env.advance_overhead(costs.checkpoint_cycles, corruption, "cscp")
    state.checkpoints += 1
    env.recorder.checkpoint(state.clock, CheckpointKind.CSCP)

    if corruption.corrupted:
        if sub_kind is CheckpointKind.SCP:
            committed = clean_boundary * sub_cycles
        else:
            committed = 0.0
        _detect(env, outcome, committed=committed)
        return outcome

    outcome.committed_cycles = interval_cycles
    return outcome


def _detect(env: _Environment, outcome: _Interval, *, committed: float) -> None:
    """Charge the rollback and fill in the outcome of a failed interval.

    Faults arriving *during* the rollback operation (possible only with
    ``faults_during_overhead``) corrupt the freshly restored state; they
    are tracked separately and carried into the next attempt.
    """
    costs = env.state.task.costs
    carry = _Corruption()
    env.advance_overhead(costs.rollback_cycles, carry, "rollback")
    env.recorder.rollback(env.state.clock, committed)
    outcome.detected = True
    outcome.committed_cycles = committed
    outcome.carry = carry if carry.corrupted else None


def _effective_subdivisions(m: int, interval_cycles: float) -> int:
    """Clamp ``m`` so every sub-interval spans a meaningful cycle count."""
    if interval_cycles <= 0:
        return 1
    largest = max(1, int(interval_cycles / 1e-6))
    return max(1, min(m, largest))
