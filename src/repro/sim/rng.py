"""Reproducible random-number streams for the Monte-Carlo harness.

Built on :class:`numpy.random.Generator` with ``SeedSequence`` spawning,
so every run of every experiment cell gets an independent, reproducible
stream: ``RandomSource(seed).substream(i)`` is deterministic in
``(seed, i)`` and statistically independent across ``i``.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["RandomSource"]


class RandomSource:
    """A root seed from which independent substreams are derived."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._sequence = np.random.SeedSequence(self._seed)

    @property
    def seed(self) -> int:
        """The root seed this source was created with."""
        return self._seed

    def generator(self) -> np.random.Generator:
        """A generator seeded directly from the root seed."""
        return np.random.default_rng(np.random.SeedSequence(self._seed))

    def substream(self, index: int) -> np.random.Generator:
        """The ``index``-th independent substream (deterministic)."""
        if index < 0:
            raise ValueError(f"substream index must be >= 0, got {index}")
        child = np.random.SeedSequence(self._seed, spawn_key=(index,))
        return np.random.default_rng(child)

    def block_stream(self, block: int) -> np.random.Generator:
        """The draw stream of the ``block``-th fixed-size rep block.

        The chunk-stable contract of the vectorised static fast path
        (:mod:`repro.sim.fastpath`): block ``b`` of a cell always draws
        from ``SeedSequence(cell_seed, spawn_key=(b,))`` — the spawn
        tree of :meth:`substream`, re-keyed from per-rep to per-block —
        so which worker samples the block, and in what order blocks
        complete, cannot change the realisations.
        """
        return self.substream(block)

    def substreams(self, count: int) -> Iterator[np.random.Generator]:
        """Iterate the first ``count`` substreams."""
        for index in range(count):
            yield self.substream(index)

    def fork(self, label: int) -> "RandomSource":
        """A new root source derived deterministically from this one.

        Used to give each experiment cell its own seed universe so that
        adding rows to a table never perturbs existing rows.
        """
        mixed = np.random.SeedSequence(self._seed, spawn_key=(0xC0FFEE, label))
        return RandomSource(int(mixed.generate_state(1, np.uint64)[0]))
