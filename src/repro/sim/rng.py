"""Reproducible random-number streams for the Monte-Carlo harness.

Built on :class:`numpy.random.Generator` with ``SeedSequence`` spawning,
so every run of every experiment cell gets an independent, reproducible
stream: ``RandomSource(seed).substream(i)`` is deterministic in
``(seed, i)`` and statistically independent across ``i``.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["RandomSource", "FAST_STREAM_TAG"]

#: Domain-separation tag folded into every fast-kernel block stream so
#: the fast mode's Philox universe can never collide with the exact
#: mode's ``SeedSequence(seed, spawn_key=...)`` spawn tree.
FAST_STREAM_TAG = 0xFA57B10C


class RandomSource:
    """A root seed from which independent substreams are derived."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._sequence = np.random.SeedSequence(self._seed)

    @property
    def seed(self) -> int:
        """The root seed this source was created with."""
        return self._seed

    def generator(self) -> np.random.Generator:
        """A generator seeded directly from the root seed."""
        return np.random.default_rng(np.random.SeedSequence(self._seed))

    def substream(self, index: int) -> np.random.Generator:
        """The ``index``-th independent substream (deterministic)."""
        if index < 0:
            raise ValueError(f"substream index must be >= 0, got {index}")
        child = np.random.SeedSequence(self._seed, spawn_key=(index,))
        return np.random.default_rng(child)

    def block_stream(self, block: int) -> np.random.Generator:
        """The draw stream of the ``block``-th fixed-size rep block.

        The chunk-stable contract of the vectorised static fast path
        (:mod:`repro.sim.fastpath`): block ``b`` of a cell always draws
        from ``SeedSequence(cell_seed, spawn_key=(b,))`` — the spawn
        tree of :meth:`substream`, re-keyed from per-rep to per-block —
        so which worker samples the block, and in what order blocks
        complete, cannot change the realisations.
        """
        return self.substream(block)

    def fast_block_stream(self, block_start: int) -> np.random.Generator:
        """One vectorised Philox stream for a fast-kernel rep block.

        The fast kernel (:mod:`repro.sim.kernel`) draws a whole block's
        fault realisations from a *single* counter-based bit generator
        instead of constructing one ``SeedSequence → PCG64`` pair per
        rep (~13 µs each).  The stream is a pure function of
        ``(seed, FAST_STREAM_TAG, block_start)`` — the absolute index
        of the block's first rep — so, for a fixed chunk size, which
        worker draws the block (and in what order blocks complete)
        cannot change the realisations: fast mode's *block-determinism*
        contract, the fast twin of :meth:`block_stream`'s.  The tag
        keeps this universe disjoint from the exact mode's spawn tree.
        """
        if block_start < 0:
            raise ValueError(
                f"block_start must be >= 0, got {block_start}"
            )
        sequence = np.random.SeedSequence(
            entropy=(self._seed, FAST_STREAM_TAG, int(block_start))
        )
        return np.random.Generator(np.random.Philox(sequence))

    def substreams(self, count: int) -> Iterator[np.random.Generator]:
        """Iterate the first ``count`` substreams."""
        for index in range(count):
            yield self.substream(index)

    def fork(self, label: int) -> "RandomSource":
        """A new root source derived deterministically from this one.

        Used to give each experiment cell its own seed universe so that
        adding rows to a table never perturbs existing rows.
        """
        mixed = np.random.SeedSequence(self._seed, spawn_key=(0xC0FFEE, label))
        return RandomSource(int(mixed.generate_state(1, np.uint64)[0]))
