"""Energy accounting for the DMR pair under DVS.

The paper measures energy "by summing the product of the square of the
voltage and the number of computation cycles over all the segments of
the task".  Both processors of the DMR pair execute every cycle, so the
system energy is

``E = n_processors · Σ_segments V(f_segment)² · cycles_segment``.

The paper never states the absolute voltage of ``f1``; calibrating
against the published tables fixes ``V(f) = sqrt(2·f)`` (energy per
cycle per processor ``2f``: 2 at ``f1 = 1``, 4 at ``f2 = 2``, hence the
tables' system totals of ``4·cycles`` and ``8·cycles``).  See DESIGN.md
§2 and EXPERIMENTS.md.  A linear ``V(f) = f`` map is available for
sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

from repro.core.dvs import SpeedLadder
from repro.errors import ParameterError

__all__ = ["EnergyModel", "EnergyAccount"]


@dataclass(frozen=True)
class EnergyModel:
    """Maps (frequency, cycles) segments to energy.

    Parameters
    ----------
    voltage_of:
        ``V(f)`` — supply voltage at frequency ``f``.
    n_processors:
        Number of processors executing each cycle (2 for DMR).
    """

    voltage_of: Callable[[float], float]
    n_processors: int = 2

    def __post_init__(self) -> None:
        if self.n_processors < 1:
            raise ParameterError(
                f"n_processors must be >= 1, got {self.n_processors}"
            )

    def segment_energy(self, frequency: float, cycles: float) -> float:
        """Energy of executing ``cycles`` cycles at ``frequency``."""
        if cycles < 0:
            raise ParameterError(f"cycles must be >= 0, got {cycles}")
        voltage = self.voltage_of(frequency)
        return self.n_processors * voltage * voltage * cycles

    @classmethod
    def paper_dmr(cls) -> "EnergyModel":
        """The calibrated paper model: DMR pair, ``V(f) = sqrt(2f)``."""
        return cls(voltage_of=lambda f: (2.0 * f) ** 0.5, n_processors=2)

    @classmethod
    def linear_voltage(cls, n_processors: int = 2) -> "EnergyModel":
        """Textbook ``V(f) = f`` scaling (energy per cycle ``f²``)."""
        return cls(voltage_of=lambda f: f, n_processors=n_processors)

    @classmethod
    def from_ladder(cls, ladder: SpeedLadder, n_processors: int = 2) -> "EnergyModel":
        """Use the voltages recorded on a :class:`SpeedLadder`."""
        return cls(voltage_of=ladder.voltage_of, n_processors=n_processors)


@dataclass
class EnergyAccount:
    """Accumulates energy over the segments of one simulated run."""

    model: EnergyModel
    total: float = 0.0
    cycles_by_frequency: Dict[float, float] = field(default_factory=dict)

    def charge(self, frequency: float, cycles: float) -> float:
        """Record a segment; returns the energy added."""
        energy = self.model.segment_energy(frequency, cycles)
        self.total += energy
        self.cycles_by_frequency[frequency] = (
            self.cycles_by_frequency.get(frequency, 0.0) + cycles
        )
        return energy

    @property
    def total_cycles(self) -> float:
        """All cycles executed (useful + overhead + re-execution)."""
        return sum(self.cycles_by_frequency.values())
