"""Execution traces: optional structured recording of a simulated run.

A :class:`TraceRecorder` receives callbacks from the executor (time
segments, checkpoints, faults, rollbacks, speed changes).  The default
:data:`NULL_RECORDER` ignores everything at near-zero cost; pass a
:class:`Trace` to capture the full history, inspect it programmatically
or render a compact ASCII timeline for debugging and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.checkpoints import CheckpointKind

__all__ = [
    "TraceRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "TeeRecorder",
    "Trace",
    "SegmentRecord",
    "CheckpointRecord",
    "FaultRecord",
    "RollbackRecord",
    "SpeedRecord",
]


class TraceRecorder:
    """Callback interface; all methods default to no-ops."""

    def segment(
        self, label: str, frequency: float, start: float, end: float, cycles: float
    ) -> None:
        """A contiguous span of execution or overhead."""

    def checkpoint(self, time: float, kind: CheckpointKind) -> None:
        """A checkpoint operation completed at ``time``."""

    def fault(self, time: float, *, corrupting: bool) -> None:
        """A fault arrived (``corrupting`` per the overhead setting)."""

    def rollback(self, time: float, committed_cycles: float) -> None:
        """A detected fault rolled the pair back."""

    def speed(self, time: float, frequency: float) -> None:
        """The DVS policy (re)selected a speed."""

    def finish(self, time: float, *, completed: bool, timely: bool) -> None:
        """The run terminated."""


class NullRecorder(TraceRecorder):
    """Explicitly does nothing (singleton :data:`NULL_RECORDER`)."""


NULL_RECORDER = NullRecorder()


class TeeRecorder(TraceRecorder):
    """Fans every callback out to several recorders, in order.

    Lets one run feed independent consumers — e.g. a golden-trace
    writer plus a :class:`Trace` for rendering — without the executor
    knowing about either.  A child that raises aborts the fan-out (the
    divergence recorder of :mod:`repro.goldens` relies on this: earlier
    children have already seen the event, later ones have not).
    """

    __slots__ = ("_children",)

    def __init__(self, *children: TraceRecorder) -> None:
        self._children = tuple(
            child for child in children if child is not NULL_RECORDER
        )

    def segment(
        self, label: str, frequency: float, start: float, end: float, cycles: float
    ) -> None:
        for child in self._children:
            child.segment(label, frequency, start, end, cycles)

    def checkpoint(self, time: float, kind: CheckpointKind) -> None:
        for child in self._children:
            child.checkpoint(time, kind)

    def fault(self, time: float, *, corrupting: bool) -> None:
        for child in self._children:
            child.fault(time, corrupting=corrupting)

    def rollback(self, time: float, committed_cycles: float) -> None:
        for child in self._children:
            child.rollback(time, committed_cycles)

    def speed(self, time: float, frequency: float) -> None:
        for child in self._children:
            child.speed(time, frequency)

    def finish(self, time: float, *, completed: bool, timely: bool) -> None:
        for child in self._children:
            child.finish(time, completed=completed, timely=timely)


@dataclass(frozen=True)
class SegmentRecord:
    label: str
    frequency: float
    start: float
    end: float
    cycles: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class CheckpointRecord:
    time: float
    kind: CheckpointKind


@dataclass(frozen=True)
class FaultRecord:
    time: float
    corrupting: bool


@dataclass(frozen=True)
class RollbackRecord:
    time: float
    committed_cycles: float


@dataclass(frozen=True)
class SpeedRecord:
    time: float
    frequency: float


@dataclass
class Trace(TraceRecorder):
    """Captures the complete event history of one run."""

    segments: List[SegmentRecord] = field(default_factory=list)
    checkpoints: List[CheckpointRecord] = field(default_factory=list)
    faults: List[FaultRecord] = field(default_factory=list)
    rollbacks: List[RollbackRecord] = field(default_factory=list)
    speeds: List[SpeedRecord] = field(default_factory=list)
    finish_time: Optional[float] = None
    completed: Optional[bool] = None
    timely: Optional[bool] = None

    def segment(
        self, label: str, frequency: float, start: float, end: float, cycles: float
    ) -> None:
        self.segments.append(SegmentRecord(label, frequency, start, end, cycles))

    def checkpoint(self, time: float, kind: CheckpointKind) -> None:
        self.checkpoints.append(CheckpointRecord(time, kind))

    def fault(self, time: float, *, corrupting: bool) -> None:
        self.faults.append(FaultRecord(time, corrupting))

    def rollback(self, time: float, committed_cycles: float) -> None:
        self.rollbacks.append(RollbackRecord(time, committed_cycles))

    def speed(self, time: float, frequency: float) -> None:
        self.speeds.append(SpeedRecord(time, frequency))

    def finish(self, time: float, *, completed: bool, timely: bool) -> None:
        self.finish_time = time
        self.completed = completed
        self.timely = timely

    @property
    def total_overhead_time(self) -> float:
        """Time spent on checkpoint/rollback operations."""
        return sum(s.duration for s in self.segments if s.label != "exec")

    @property
    def total_execution_time(self) -> float:
        """Time spent on useful (possibly later discarded) work."""
        return sum(s.duration for s in self.segments if s.label == "exec")

    def render(self, width: int = 72) -> str:
        """Compact ASCII timeline of the run.

        One character per time bucket: ``=`` execution, ``s``/``c``/``#``
        SCP/CCP/CSCP overhead, ``r`` rollback, ``!`` marks a bucket with
        a corrupting fault.  A header line reports outcome and totals.
        """
        if not self.segments:
            return "(empty trace)"
        horizon = max(s.end for s in self.segments)
        if horizon <= 0:
            return "(empty trace)"
        scale = width / horizon
        chars = [" "] * width
        order = {"exec": 0, "scp": 1, "ccp": 1, "cscp": 2, "rollback": 3}
        glyph = {"exec": "=", "scp": "s", "ccp": "c", "cscp": "#", "rollback": "r"}
        for seg in self.segments:
            lo = min(width - 1, int(seg.start * scale))
            hi = min(width - 1, int(max(seg.start, seg.end - 1e-12) * scale))
            for i in range(lo, hi + 1):
                current = chars[i]
                if current == " " or order.get(seg.label, 0) > _glyph_order(current):
                    chars[i] = glyph.get(seg.label, "?")
        fault_order = _glyph_order("!")
        for fault in self.faults:
            if fault.corrupting:
                i = min(width - 1, int(fault.time * scale))
                # Same priority ordering as the segment pass, so the
                # timeline is stable regardless of event insertion order.
                if fault_order > _glyph_order(chars[i]):
                    chars[i] = "!"
        if self.finish_time is None:
            # A run that never called finish() (aborted, still in
            # flight, or cut short at a divergence) still renders.
            header = "[unfinished] t=?"
        else:
            outcome = (
                "timely"
                if self.timely
                else ("late" if self.completed else "failed")
            )
            header = f"[{outcome}] t={self.finish_time:.1f}"
        header += (
            f" faults={sum(1 for f in self.faults if f.corrupting)} "
            f"rollbacks={len(self.rollbacks)} cscp={sum(1 for c in self.checkpoints if c.kind is CheckpointKind.CSCP)}"
        )
        return header + "\n" + "".join(chars)


def _glyph_order(char: str) -> int:
    return {"=": 0, "s": 1, "c": 1, "#": 2, "r": 3, "!": 4}.get(char, 0)
