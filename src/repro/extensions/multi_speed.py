"""Multi-level DVS ladders (beyond the paper's two speeds).

The paper restricts the analysis to two speeds "to simplify the
analysis and to allow for the derivation of analytical formulas"; the
adaptive machinery itself generalises directly: the speed-selection
rule "slowest frequency whose ``t_est`` meets the remaining deadline"
works for any ladder (see
:meth:`repro.core.dvs.SpeedLadder.select_speed`).  This module provides
ladder constructors and a comparison harness quantifying the energy
head-room finer ladders unlock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.core.dvs import SpeedLadder
from repro.core.schemes import AdaptiveConfig, AdaptiveSCPPolicy
from repro.errors import ParameterError
from repro.sim.montecarlo import CellEstimate, estimate
from repro.sim.task import TaskSpec

__all__ = ["uniform_ladder", "paper_ladder", "LadderComparison", "compare_ladders"]


def paper_ladder() -> SpeedLadder:
    """The paper's two speeds: ``f ∈ {1, 2}``."""
    return SpeedLadder.paper_two_level()


def uniform_ladder(levels: int, f_max: float = 2.0) -> SpeedLadder:
    """``levels`` equally spaced frequencies over ``[1, f_max]``.

    ``uniform_ladder(2)`` reproduces the paper's ladder; more levels let
    the DVS policy shave energy by running *just* fast enough.
    """
    if levels < 2:
        raise ParameterError(f"levels must be >= 2, got {levels}")
    if f_max <= 1.0:
        raise ParameterError(f"f_max must be > 1, got {f_max}")
    step = (f_max - 1.0) / (levels - 1)
    return SpeedLadder.from_frequencies(
        tuple(1.0 + i * step for i in range(levels))
    )


@dataclass(frozen=True)
class LadderComparison:
    """(P, E) of the same task/scheme across several ladders."""

    task: TaskSpec
    results: Dict[str, CellEstimate]

    def energy_saving_vs(self, baseline: str, candidate: str) -> float:
        """Relative energy saving of ``candidate`` over ``baseline``
        (positive = candidate cheaper), computed on timely-run energy."""
        base = self.results[baseline].e
        cand = self.results[candidate].e
        return 1.0 - cand / base


def compare_ladders(
    task: TaskSpec,
    ladders: Dict[str, SpeedLadder],
    *,
    reps: int = 1000,
    seed: int = 0,
    policy_class=AdaptiveSCPPolicy,
) -> LadderComparison:
    """Monte-Carlo (P, E) of ``policy_class`` under each ladder.

    All ladders see identical fault realisations (same seed), so the
    comparison isolates the ladder effect.
    """
    if not ladders:
        raise ParameterError("need at least one ladder to compare")
    results: Dict[str, CellEstimate] = {}
    for label, ladder in ladders.items():
        config = AdaptiveConfig(ladder=ladder)
        results[label] = estimate(
            task,
            lambda config=config: policy_class(config),
            reps=reps,
            seed=seed,
        )
    return LadderComparison(task=task, results=results)
