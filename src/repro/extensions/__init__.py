"""Extensions beyond the paper's core contribution: TMR voting,
multi-level DVS ladders and authenticated (secure) checkpointing."""

from repro.extensions import multi_speed, security, tmr

__all__ = ["multi_speed", "security", "tmr"]
