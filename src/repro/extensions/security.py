"""Secure checkpointing: the paper's stated future work.

The conclusion announces an extension "to other task duplication
systems with security needs".  In a hostile environment, stored
checkpoints must be authenticated (MAC on store, verification on load /
compare) or an attacker who can flip bits in checkpoint storage defeats
the rollback.  Authentication is pure overhead on exactly the knobs the
paper's analysis exposes — ``t_s`` and ``t_cp`` — so the machinery
extends without modification:

* :func:`secure_cost_model` inflates a base
  :class:`~repro.core.checkpoints.CostModel` with MAC/verify cycles;
* :func:`security_sweep` quantifies how the optimal subdivision ``m``
  and the (P, E) outcome move as authentication gets more expensive —
  heavier stores push ``num_SCP`` toward fewer stores, i.e. security
  pressure *shifts the optimum*, it does not just scale the cost.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence

from repro.core.checkpoints import CostModel
from repro.core.optimizer import num_scp
from repro.core.schemes import AdaptiveSCPPolicy
from repro.errors import ParameterError
from repro.sim.montecarlo import CellEstimate, estimate
from repro.sim.task import TaskSpec

__all__ = ["secure_cost_model", "SecurityPoint", "security_sweep"]


def secure_cost_model(
    base: CostModel, *, mac_cycles: float, verify_cycles: float = 0.0
) -> CostModel:
    """Checkpoint costs inflated by authentication.

    ``mac_cycles`` is added to every store (computing the MAC over the
    stored state); ``verify_cycles`` to every compare (checking the
    peer's authenticated digest instead of raw state).
    """
    if mac_cycles < 0 or verify_cycles < 0:
        raise ParameterError("authentication costs must be >= 0")
    return CostModel(
        store_cycles=base.store_cycles + mac_cycles,
        compare_cycles=base.compare_cycles + verify_cycles,
        rollback_cycles=base.rollback_cycles,
    )


@dataclass(frozen=True)
class SecurityPoint:
    """Outcome at one authentication cost level."""

    mac_cycles: float
    optimal_m: int
    expected_interval_time: float
    cell: CellEstimate

    @property
    def p(self) -> float:
        return self.cell.p

    @property
    def e(self) -> float:
        return self.cell.e


def security_sweep(
    task: TaskSpec,
    mac_grid: Sequence[float],
    *,
    interval: float = 200.0,
    reps: int = 500,
    seed: int = 0,
    verify_per_mac: float = 0.0,
) -> List[SecurityPoint]:
    """(optimal m, P, E) as authentication cost grows.

    ``interval`` is a representative CSCP interval (time units) for the
    analytic ``num_SCP`` read-out; the Monte-Carlo cell uses the full
    adaptive scheme with the inflated cost model.
    """
    if not mac_grid:
        raise ParameterError("mac_grid must be non-empty")
    points: List[SecurityPoint] = []
    for mac in mac_grid:
        costs = secure_cost_model(
            task.costs, mac_cycles=mac, verify_cycles=verify_per_mac * mac
        )
        secured = replace(task, costs=costs)
        plan = num_scp(
            interval,
            rate=task.fault_rate,
            store=costs.store_cycles,
            compare=costs.compare_cycles,
            rollback=costs.rollback_cycles,
        )
        cell = estimate(secured, AdaptiveSCPPolicy, reps=reps, seed=seed)
        points.append(
            SecurityPoint(
                mac_cycles=mac,
                optimal_m=plan.m,
                expected_interval_time=plan.expected_time,
                cell=cell,
            )
        )
    return points
