"""Triple modular redundancy (TMR) with majority voting.

The paper builds on Nakagawa, Fukumoto & Ishii [5], who analysed both
double and triple modular redundancy; the paper itself develops the DMR
case and leaves other duplication systems as future work.  This module
supplies the TMR side:

* three processors execute the task; each suffers independent Poisson
  faults at ``rate_per_processor``;
* at every comparison point (interior CCP or closing CSCP) a majority
  vote runs: if at most one processor has diverged, its state is
  *masked* — repaired from the agreeing pair — and execution continues
  without rollback; if two or more diverged there is no majority and
  the pair rolls back to the last stored state;
* energy triples (three processors execute every cycle).

:func:`tmr_interval_time` is the renewal model of one CSCP interval
(success probability ``p²(3 − 2p)`` with ``p = e^{−λT}``);
:func:`simulate_tmr_run` is the Monte-Carlo executor.  SCP subdivision
is not offered: store-checkpoints do not vote, so TMR's masking cannot
act between comparisons (use CCP subdivision or plain CSCPs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.checkpoints import CheckpointKind
from repro.core.schemes import CheckpointPolicy
from repro.errors import ParameterError, SimulationError
from repro.sim.energy import EnergyAccount, EnergyModel
from repro.sim.executor import RunResult, SimulationLimits
from repro.sim.faults import FaultStream, PoissonFaults
from repro.sim.state import ExecutionState
from repro.sim.task import TaskSpec

__all__ = ["tmr_interval_time", "tmr_success_probability", "simulate_tmr_run",
           "tmr_energy_model"]


def tmr_success_probability(span: float, rate_per_processor: float) -> float:
    """P(majority survives an interval): ``p²·(3 − 2p)``, ``p = e^{−λT}``.

    At most one of the three processors may fault during the interval
    for the vote to mask it.
    """
    if span < 0:
        raise ParameterError(f"span must be >= 0, got {span}")
    if rate_per_processor < 0:
        raise ParameterError(
            f"rate_per_processor must be >= 0, got {rate_per_processor}"
        )
    p = math.exp(-rate_per_processor * span)
    return p * p * (3.0 - 2.0 * p)


def tmr_interval_time(
    span: float,
    *,
    rate_per_processor: float,
    cost: float,
    rollback: float = 0.0,
) -> float:
    """Expected time of one CSCP interval under TMR voting.

    Renewal argument: each attempt costs ``T + cost`` and commits with
    probability ``q = p²(3 − 2p)``; a failed attempt additionally pays
    the rollback.  ``R = (T + cost)/q + t_r·(1/q − 1)``.

    Compare :func:`repro.core.renewal.cscp_interval_time` for DMR, whose
    success probability is ``e^{−2λT}`` — strictly smaller than ``q``
    for every ``λT > 0``, which is exactly the TMR advantage (bought
    with 1.5× the energy per cycle).
    """
    if span <= 0:
        raise ParameterError(f"span must be > 0, got {span}")
    if cost < 0 or rollback < 0:
        raise ParameterError("cost and rollback must be >= 0")
    q = tmr_success_probability(span, rate_per_processor)
    if q <= 0.0:  # pragma: no cover - q > 0 for finite spans
        return math.inf
    return (span + cost) / q + rollback * (1.0 / q - 1.0)


def tmr_energy_model() -> EnergyModel:
    """The calibrated paper voltage map with three processors."""
    return EnergyModel(voltage_of=lambda f: (2.0 * f) ** 0.5, n_processors=3)


@dataclass
class _Divergence:
    """Per-processor corruption flags since the last consistent state."""

    flags: list

    @classmethod
    def clean(cls) -> "_Divergence":
        return cls(flags=[False, False, False])

    @property
    def count(self) -> int:
        return sum(self.flags)

    def reset(self) -> None:
        self.flags = [False, False, False]


def simulate_tmr_run(
    task: TaskSpec,
    policy: CheckpointPolicy,
    *,
    rate_per_processor: Optional[float] = None,
    energy_model: Optional[EnergyModel] = None,
    rng: Optional[np.random.Generator] = None,
    limits: SimulationLimits = SimulationLimits(),
) -> RunResult:
    """Simulate one TMR execution of ``task`` under ``policy``.

    ``rate_per_processor`` defaults to ``task.fault_rate`` (each of the
    three processors then faults at the task's rate).  The policy's plan
    machinery is reused unchanged; plans carrying SCP subdivision are
    rejected (see module docstring).
    """
    if rate_per_processor is None:
        rate_per_processor = task.fault_rate
    if energy_model is None:
        energy_model = tmr_energy_model()
    if rng is None:
        rng = np.random.default_rng()

    streams = [
        PoissonFaults(rate_per_processor).stream(child)
        for child in (rng.spawn(3) if hasattr(rng, "spawn") else _split(rng))
    ]
    state = ExecutionState.fresh(task)
    account = EnergyAccount(energy_model)
    policy.start(state)

    intervals = 0
    failure: Optional[str] = None
    while state.remaining_cycles > 1e-9:
        intervals += 1
        if intervals > limits.max_intervals:
            raise SimulationError("TMR run exceeded the interval safety bound")
        if state.remaining_time > state.deadline_left:
            failure = "deadline_infeasible"
            break
        if state.clock > limits.horizon(task):
            failure = "horizon"
            break

        plan = policy.plan(state)
        if plan.sub_kind is CheckpointKind.SCP and plan.m > 1:
            raise ParameterError(
                "TMR masking needs comparison points; SCP subdivision is "
                "not supported (use AdaptiveCCPPolicy or AdaptiveDVSPolicy)"
            )
        committed, detected = _run_tmr_interval(
            state, account, streams, plan, task
        )
        state.remaining_cycles -= committed
        if detected:
            state.detected_faults += 1
            state.rollbacks += 1
            state.faults_left -= 1
            policy.on_fault(state)

    completed = state.remaining_cycles <= 1e-9
    timely = completed and state.clock <= task.deadline + 1e-9
    return RunResult(
        completed=completed,
        timely=timely,
        finish_time=state.clock,
        energy=account.total,
        cycles_executed=account.total_cycles,
        cycles_by_frequency=dict(account.cycles_by_frequency),
        detected_faults=state.detected_faults,
        injected_faults=state.injected_faults,
        checkpoints=state.checkpoints,
        sub_checkpoints=state.sub_checkpoints,
        rollbacks=state.rollbacks,
        failure_reason=None if completed else (failure or "deadline_infeasible"),
    )


def _run_tmr_interval(state, account, streams, plan, task):
    """One CSCP interval with majority votes at every comparison."""
    frequency = state.frequency
    costs = task.costs
    interval_cycles = min(plan.interval_time * frequency, state.remaining_cycles)
    m = max(1, plan.m)
    sub = interval_cycles / m
    divergence = _Divergence.clean()

    def advance(cycles: float) -> None:
        start = state.clock
        end = start + cycles / frequency
        for index, stream in enumerate(streams):
            while stream.peek() <= end:
                stream.pop()
                state.injected_faults += 1
                divergence.flags[index] = True
        state.clock = end
        account.charge(frequency, cycles)

    def vote() -> bool:
        """True when the vote fails (no majority): rollback needed."""
        if divergence.count >= 2:
            return True
        if divergence.count == 1:
            # Masked: repair the dissenting processor from the majority.
            state.counters["masked"] = state.counters.get("masked", 0) + 1
            divergence.reset()
        return False

    for index in range(1, m + 1):
        advance(sub)
        if index < m:
            state.sub_checkpoints += 1
            advance(costs.compare_cycles)
            if vote():
                advance(costs.rollback_cycles)
                return 0.0, True
    advance(costs.checkpoint_cycles)
    state.checkpoints += 1
    if vote():
        advance(costs.rollback_cycles)
        return 0.0, True
    return interval_cycles, False


def _split(rng: np.random.Generator):
    """Fallback stream split for generators without ``spawn``."""
    seeds = rng.integers(0, 2**63 - 1, size=3)
    return [np.random.default_rng(int(s)) for s in seeds]
