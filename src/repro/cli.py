"""Command-line interface: regenerate tables, validate shapes, demo runs.

Usage (installed as ``repro`` or via ``python -m repro``)::

    repro table 1a --reps 2000          # regenerate paper table 1(a)
    repro validate --reps 500           # all 8 tables + shape criteria
    repro demo --scheme A_D_S           # trace one simulated run
    repro list                          # available tables
    repro worker tcp://host:8642        # serve blocks for a coordinator

Where the Monte-Carlo cells run is one validated selector
(``--backend {serial,process,distributed}``; see
:class:`repro.experiments.config.ExecutionSettings`): ``--workers N``
sizes the process pool (and, alone, still implies ``--backend
process`` for compatibility), ``--cluster-workers N`` spawns loopback
worker subprocesses for the distributed backend.  Results are
bit-identical across backends for a fixed ``--chunk-size``.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import List, Optional

from repro.core.schemes import (
    AdaptiveCCPPolicy,
    AdaptiveDVSPolicy,
    AdaptiveSCPPolicy,
    KFaultTolerantPolicy,
    PoissonArrivalPolicy,
)
from repro.errors import ReproError
from repro.experiments.config import (
    ExecutionSettings,
    all_table_specs,
    table_spec,
)
from repro.sim.backends import BACKEND_NAMES
from repro.experiments.paper_data import TABLE_IDS
from repro.experiments.report import format_table, markdown_table, shape_checks
from repro.experiments.tables import run_table
from repro.sim.energy import EnergyModel
from repro.sim.executor import simulate_run
from repro.sim.faults import PoissonFaults
from repro.sim.rng import RandomSource
from repro.sim.task import TaskSpec
from repro.sim.trace import Trace

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Energy-aware adaptive checkpointing for DMR real-time systems "
            "(reproduction of Li, Chen & Yu, DATE 2006)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table = sub.add_parser("table", help="regenerate one paper table")
    p_table.add_argument("table_id", choices=list(TABLE_IDS))
    p_table.add_argument("--reps", type=int, default=2000)
    p_table.add_argument("--seed", type=int, default=2006)
    _add_workers_flag(p_table)
    p_table.add_argument(
        "--fast-static",
        action="store_true",
        help=(
            "estimate the static scheme columns with the vectorised fast "
            "path (statistically consistent, much faster; not "
            "bit-comparable to the executor)"
        ),
    )
    p_table.add_argument("--json", action="store_true", help="emit JSON")
    p_table.add_argument(
        "--markdown", action="store_true", help="emit a markdown table"
    )
    p_table.add_argument(
        "--no-paper", action="store_true", help="hide published values"
    )

    p_val = sub.add_parser(
        "validate", help="run every table and check the reproduction shape"
    )
    p_val.add_argument("--reps", type=int, default=400)
    p_val.add_argument("--seed", type=int, default=2006)
    _add_workers_flag(p_val)

    p_demo = sub.add_parser("demo", help="trace one simulated run")
    p_demo.add_argument(
        "--scheme",
        default="A_D_S",
        choices=["Poisson", "k-f-t", "A_D", "A_D_S", "A_D_C"],
    )
    p_demo.add_argument("--utilization", type=float, default=0.8)
    p_demo.add_argument("--lam", type=float, default=1.4e-3)
    p_demo.add_argument("--k", type=int, default=5)
    p_demo.add_argument("--seed", type=int, default=0)

    p_sweep = sub.add_parser(
        "sweep", help="run a sensitivity sweep / ablation study"
    )
    p_sweep.add_argument(
        "study",
        choices=["operating-map", "fixed-m", "cost-ratio", "benefit"],
    )
    p_sweep.add_argument("--reps", type=int, default=300)
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument("--table", default="1a", choices=list(TABLE_IDS))
    _add_workers_flag(p_sweep)

    p_worker = sub.add_parser(
        "worker",
        help="serve Monte-Carlo blocks for a distributed coordinator",
    )
    p_worker.add_argument(
        "url",
        help="coordinator address, e.g. tcp://192.168.1.10:8642",
    )
    p_worker.add_argument(
        "--idle-timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help=(
            "exit after this long without hearing from the coordinator "
            "(default 120; a live coordinator pings well inside it)"
        ),
    )
    p_worker.add_argument(
        "--max-tasks",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "drop the connection after completing N blocks (fault-"
            "injection hook for the test suite; not for production)"
        ),
    )

    sub.add_parser("list", help="list the available tables")
    return parser


def _positive_int(text: str) -> int:
    """argparse type: an integer >= 1 (used by ``--chunk-size``)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _positive_float(text: str) -> float:
    """argparse type: a finite float > 0 (used by ``--idle-timeout``)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}")
    if not math.isfinite(value) or value <= 0:
        raise argparse.ArgumentTypeError(f"must be a finite value > 0, got {value}")
    return value


def _add_workers_flag(parser: argparse.ArgumentParser) -> None:
    """The shared execution flags (table / validate / sweep)."""
    parser.add_argument(
        "--backend",
        choices=list(BACKEND_NAMES),
        default=None,
        help=(
            "where Monte-Carlo cells run (default: serial, or a process "
            "pool when --workers > 1).  'distributed' dispatches blocks "
            "to socket workers — spawn loopback ones with "
            "--cluster-workers, or start them elsewhere with "
            "'repro worker'.  Results are bit-identical across backends "
            "for a fixed --chunk-size."
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes for the process backend (unset/1 = "
            "serial unless --backend process is given; 0 = one per "
            "CPU).  Results are identical for any value."
        ),
    )
    parser.add_argument(
        "--cluster-workers",
        type=int,
        default=0,
        metavar="N",
        help=(
            "with --backend distributed: spawn N loopback worker "
            "subprocesses for this run (0 = expect external workers)"
        ),
    )
    parser.add_argument(
        "--url",
        default=None,
        metavar="TCP_URL",
        help=(
            "with --backend distributed: coordinator bind address "
            "(e.g. tcp://0.0.0.0:8642) for externally started "
            "'repro worker' processes; default loopback"
        ),
    )
    parser.add_argument(
        "--chunk-size",
        type=_positive_int,
        default=None,
        metavar="REPS",
        help=(
            "reps per block — the unit of scheduling AND of the blocked "
            "statistics reduction (default 256).  For a fixed value, "
            "results are bit-identical across any --workers/--backend; "
            "record it with the seed when reproducibility matters."
        ),
    )
    parser.add_argument(
        "--no-adaptive-batch",
        action="store_true",
        help=(
            "disable latency-adaptive dispatch batching on the parallel "
            "backends (worker batches sized from an EWMA of observed "
            "block latency).  Dispatch-only: results are bit-identical "
            "with batching on or off."
        ),
    )


def _make_runner(args: argparse.Namespace) -> Optional["BatchRunner"]:
    """The runner the execution flags describe (None = implicit serial).

    All validation lives in :class:`~repro.experiments.config.
    ExecutionSettings` — contradictory flag combinations raise a
    :class:`~repro.errors.ConfigurationError`, which ``main`` reports
    as exit code 2 like every other configuration problem.
    """
    settings = ExecutionSettings(
        backend=getattr(args, "backend", None),
        workers=getattr(args, "workers", None),
        chunk_size=getattr(args, "chunk_size", None),
        cluster_workers=getattr(args, "cluster_workers", 0),
        url=getattr(args, "url", None),
        adaptive_batching=not getattr(args, "no_adaptive_batch", False),
    )
    return settings.make_runner()


def _close_runner(runner: Optional["BatchRunner"]) -> None:
    if runner is not None:
        runner.close()


def _demo_policy(scheme: str):
    if scheme == "Poisson":
        return PoissonArrivalPolicy(1.0)
    if scheme == "k-f-t":
        return KFaultTolerantPolicy(1.0)
    if scheme == "A_D":
        return AdaptiveDVSPolicy()
    if scheme == "A_D_C":
        return AdaptiveCCPPolicy()
    return AdaptiveSCPPolicy()


def _cmd_table(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    try:
        result = run_table(
            args.table_id,
            reps=args.reps,
            seed=args.seed,
            runner=runner,
            fast_static=args.fast_static,
        )
    finally:
        _close_runner(runner)
    if args.json:
        payload = {
            "table": args.table_id,
            "reps": args.reps,
            "seed": args.seed,
            "rows": [
                {
                    "u": row.u,
                    "lam": row.lam,
                    "cells": {
                        scheme: {
                            "p": row.cell(scheme).p,
                            "e": None
                            if math.isnan(row.cell(scheme).e)
                            else row.cell(scheme).e,
                            "paper_p": getattr(row.cell(scheme).paper, "p", None),
                            "paper_e": _none_if_nan(
                                getattr(row.cell(scheme).paper, "e", None)
                            ),
                        }
                        for scheme in result.schemes
                    },
                }
                for row in result.rows
            ],
        }
        print(json.dumps(payload, indent=2))
    elif args.markdown:
        print(markdown_table(result))
    else:
        print(format_table(result, show_paper=not args.no_paper))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    failures: List[str] = []
    runner = _make_runner(args)
    try:
        for spec in all_table_specs():
            result = run_table(
                spec, reps=args.reps, seed=args.seed, runner=runner
            )
            checks = shape_checks(result)
            bad = [c for c in checks if not c.passed]
            status = "ok" if not bad else f"{len(bad)} FAILED"
            print(f"table {spec.table_id}: {len(checks)} checks, {status}")
            for check in bad:
                print(f"  {check}")
                failures.append(f"{spec.table_id}: {check.name}")
    finally:
        _close_runner(runner)
    if failures:
        print(f"\n{len(failures)} shape criteria failed")
        return 1
    print("\nall shape criteria passed")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.core.checkpoints import CostModel

    costs = (
        CostModel.ccp_favourable()
        if args.scheme == "A_D_C"
        else CostModel.scp_favourable()
    )
    task = TaskSpec(
        cycles=args.utilization * 10_000,
        deadline=10_000,
        fault_budget=args.k,
        fault_rate=args.lam,
        costs=costs,
    )
    trace = Trace()
    result = simulate_run(
        task,
        _demo_policy(args.scheme),
        PoissonFaults(task.fault_rate),
        EnergyModel.paper_dmr(),
        RandomSource(args.seed).generator(),
        recorder=trace,
    )
    print(
        f"scheme={args.scheme} U={args.utilization} λ={args.lam} k={args.k} "
        f"seed={args.seed}"
    )
    print(trace.render())
    print(
        f"completed={result.completed} timely={result.timely} "
        f"t={result.finish_time:.1f} E={result.energy:.0f} "
        f"faults={result.detected_faults} checkpoints={result.checkpoints}"
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.sensitivity import (
        cost_ratio_frontier,
        operating_map,
        render_operating_map,
        subdivision_benefit,
    )
    from repro.experiments.sweeps import fixed_m_study

    spec = table_spec(args.table)
    runner = _make_runner(args)
    try:
        if args.study == "operating-map":
            points = operating_map(
                spec,
                u_grid=[0.55, 0.70, 0.80, 0.90],
                lam_grid=[1e-4, 6e-4, 1.4e-3],
                reps=args.reps,
                seed=args.seed,
                runner=runner,
            )
            print(render_operating_map(points, spec.schemes))
            return 0
        if args.study == "fixed-m":
            task = spec.task(*spec.rows[0])
            results = fixed_m_study(
                task, ms=[1, 2, 4, 8, 16], reps=args.reps, seed=args.seed,
                runner=runner,
            )
            print(
                f"fixed m vs num_SCP at U={spec.rows[0][0]}, "
                f"λ={spec.rows[0][1]}:"
            )
            for name in ["m=1", "m=2", "m=4", "m=8", "m=16", "adaptive"]:
                cell = results[name]
                print(f"  {name:>9}: P={cell.p:.4f} E={cell.e:9.0f}")
            return 0
    finally:
        _close_runner(runner)
    if args.study == "cost-ratio":
        print("t_s/t_cp ratio vs optimal subdivision (span=200, λ=5e-4):")
        print(f"{'ratio':>8} {'m_SCP':>6} {'m_CCP':>6}")
        for ratio, m_scp, m_ccp in cost_ratio_frontier(200.0, rate=5e-4):
            print(f"{ratio:8.2f} {m_scp:6d} {m_ccp:6d}")
    else:
        print("subdivision benefit vs fault pressure λ·T "
              "(t_s=2, t_cp=20, rate=2.8e-3):")
        print(f"{'λ·T':>8} {'SCP saving':>11} {'CCP saving':>11}")
        rows = subdivision_benefit(
            [50.0, 100.0, 200.0, 400.0, 800.0],
            rate=2.8e-3,
            store=2.0,
            compare=20.0,
        )
        for pressure, scp, ccp in rows:
            print(f"{pressure:8.3f} {scp:11.1%} {ccp:11.1%}")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.sim.distributed import serve_worker

    kwargs = {}
    if args.idle_timeout is not None:
        kwargs["idle_timeout"] = args.idle_timeout
    if args.max_tasks is not None:
        kwargs["max_tasks"] = args.max_tasks
    try:
        return serve_worker(args.url, **kwargs)
    except OSError as exc:
        print(f"error: cannot reach coordinator {args.url}: {exc}",
              file=sys.stderr)
        return 1


def _cmd_list(_args: argparse.Namespace) -> int:
    for spec in all_table_specs():
        print(f"{spec.table_id}: {spec.title}")
    return 0


def _none_if_nan(value: Optional[float]) -> Optional[float]:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return None
    return value


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "table": _cmd_table,
        "validate": _cmd_validate,
        "demo": _cmd_demo,
        "sweep": _cmd_sweep,
        "worker": _cmd_worker,
        "list": _cmd_list,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
