"""Command-line interface: regenerate tables, validate shapes, demo runs.

Usage (installed as ``repro`` or via ``python -m repro``)::

    repro table 1a --reps 2000          # regenerate paper table 1(a)
    repro validate --reps 500           # all 8 tables + shape criteria
    repro demo --scheme A_D_S           # trace one simulated run
    repro list                          # available tables
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import List, Optional

from repro.core.schemes import (
    AdaptiveCCPPolicy,
    AdaptiveDVSPolicy,
    AdaptiveSCPPolicy,
    KFaultTolerantPolicy,
    PoissonArrivalPolicy,
)
from repro.errors import ReproError
from repro.experiments.config import all_table_specs, table_spec
from repro.experiments.paper_data import TABLE_IDS
from repro.experiments.report import format_table, markdown_table, shape_checks
from repro.experiments.tables import run_table
from repro.sim.energy import EnergyModel
from repro.sim.executor import simulate_run
from repro.sim.faults import PoissonFaults
from repro.sim.rng import RandomSource
from repro.sim.task import TaskSpec
from repro.sim.trace import Trace

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Energy-aware adaptive checkpointing for DMR real-time systems "
            "(reproduction of Li, Chen & Yu, DATE 2006)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table = sub.add_parser("table", help="regenerate one paper table")
    p_table.add_argument("table_id", choices=list(TABLE_IDS))
    p_table.add_argument("--reps", type=int, default=2000)
    p_table.add_argument("--seed", type=int, default=2006)
    _add_workers_flag(p_table)
    p_table.add_argument(
        "--fast-static",
        action="store_true",
        help=(
            "estimate the static scheme columns with the vectorised fast "
            "path (statistically consistent, much faster; not "
            "bit-comparable to the executor)"
        ),
    )
    p_table.add_argument("--json", action="store_true", help="emit JSON")
    p_table.add_argument(
        "--markdown", action="store_true", help="emit a markdown table"
    )
    p_table.add_argument(
        "--no-paper", action="store_true", help="hide published values"
    )

    p_val = sub.add_parser(
        "validate", help="run every table and check the reproduction shape"
    )
    p_val.add_argument("--reps", type=int, default=400)
    p_val.add_argument("--seed", type=int, default=2006)
    _add_workers_flag(p_val)

    p_demo = sub.add_parser("demo", help="trace one simulated run")
    p_demo.add_argument(
        "--scheme",
        default="A_D_S",
        choices=["Poisson", "k-f-t", "A_D", "A_D_S", "A_D_C"],
    )
    p_demo.add_argument("--utilization", type=float, default=0.8)
    p_demo.add_argument("--lam", type=float, default=1.4e-3)
    p_demo.add_argument("--k", type=int, default=5)
    p_demo.add_argument("--seed", type=int, default=0)

    p_sweep = sub.add_parser(
        "sweep", help="run a sensitivity sweep / ablation study"
    )
    p_sweep.add_argument(
        "study",
        choices=["operating-map", "fixed-m", "cost-ratio", "benefit"],
    )
    p_sweep.add_argument("--reps", type=int, default=300)
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument("--table", default="1a", choices=list(TABLE_IDS))
    _add_workers_flag(p_sweep)

    sub.add_parser("list", help="list the available tables")
    return parser


def _positive_int(text: str) -> int:
    """argparse type: an integer >= 1 (used by ``--chunk-size``)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_workers_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes for Monte-Carlo cells (default 1 = serial; "
            "0 = one per CPU).  Results are identical for any value."
        ),
    )
    parser.add_argument(
        "--chunk-size",
        type=_positive_int,
        default=None,
        metavar="REPS",
        help=(
            "reps per block — the unit of scheduling AND of the blocked "
            "statistics reduction (default 256).  For a fixed value, "
            "results are bit-identical across any --workers; record it "
            "with the seed when reproducibility matters."
        ),
    )


def _make_runner(args: argparse.Namespace) -> Optional["BatchRunner"]:
    """A batch runner per ``--workers``/``--chunk-size``.

    ``None`` (serial defaults) keeps the implicit serial path, which
    uses the same default block size — so omitting the flags and
    passing ``--workers 1`` are byte-identical.
    """
    workers = getattr(args, "workers", 1)
    chunk_size = getattr(args, "chunk_size", None)
    if (workers is None or workers == 1) and chunk_size is None:
        return None
    from repro.sim.parallel import BatchRunner

    return BatchRunner(
        workers=None if workers == 0 else workers, chunk_size=chunk_size
    )


def _demo_policy(scheme: str):
    if scheme == "Poisson":
        return PoissonArrivalPolicy(1.0)
    if scheme == "k-f-t":
        return KFaultTolerantPolicy(1.0)
    if scheme == "A_D":
        return AdaptiveDVSPolicy()
    if scheme == "A_D_C":
        return AdaptiveCCPPolicy()
    return AdaptiveSCPPolicy()


def _cmd_table(args: argparse.Namespace) -> int:
    result = run_table(
        args.table_id,
        reps=args.reps,
        seed=args.seed,
        runner=_make_runner(args),
        fast_static=args.fast_static,
    )
    if args.json:
        payload = {
            "table": args.table_id,
            "reps": args.reps,
            "seed": args.seed,
            "rows": [
                {
                    "u": row.u,
                    "lam": row.lam,
                    "cells": {
                        scheme: {
                            "p": row.cell(scheme).p,
                            "e": None
                            if math.isnan(row.cell(scheme).e)
                            else row.cell(scheme).e,
                            "paper_p": getattr(row.cell(scheme).paper, "p", None),
                            "paper_e": _none_if_nan(
                                getattr(row.cell(scheme).paper, "e", None)
                            ),
                        }
                        for scheme in result.schemes
                    },
                }
                for row in result.rows
            ],
        }
        print(json.dumps(payload, indent=2))
    elif args.markdown:
        print(markdown_table(result))
    else:
        print(format_table(result, show_paper=not args.no_paper))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    failures: List[str] = []
    runner = _make_runner(args)
    for spec in all_table_specs():
        result = run_table(spec, reps=args.reps, seed=args.seed, runner=runner)
        checks = shape_checks(result)
        bad = [c for c in checks if not c.passed]
        status = "ok" if not bad else f"{len(bad)} FAILED"
        print(f"table {spec.table_id}: {len(checks)} checks, {status}")
        for check in bad:
            print(f"  {check}")
            failures.append(f"{spec.table_id}: {check.name}")
    if failures:
        print(f"\n{len(failures)} shape criteria failed")
        return 1
    print("\nall shape criteria passed")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.core.checkpoints import CostModel

    costs = (
        CostModel.ccp_favourable()
        if args.scheme == "A_D_C"
        else CostModel.scp_favourable()
    )
    task = TaskSpec(
        cycles=args.utilization * 10_000,
        deadline=10_000,
        fault_budget=args.k,
        fault_rate=args.lam,
        costs=costs,
    )
    trace = Trace()
    result = simulate_run(
        task,
        _demo_policy(args.scheme),
        PoissonFaults(task.fault_rate),
        EnergyModel.paper_dmr(),
        RandomSource(args.seed).generator(),
        recorder=trace,
    )
    print(
        f"scheme={args.scheme} U={args.utilization} λ={args.lam} k={args.k} "
        f"seed={args.seed}"
    )
    print(trace.render())
    print(
        f"completed={result.completed} timely={result.timely} "
        f"t={result.finish_time:.1f} E={result.energy:.0f} "
        f"faults={result.detected_faults} checkpoints={result.checkpoints}"
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.sensitivity import (
        cost_ratio_frontier,
        operating_map,
        render_operating_map,
        subdivision_benefit,
    )
    from repro.experiments.sweeps import fixed_m_study

    spec = table_spec(args.table)
    runner = _make_runner(args)
    if args.study == "operating-map":
        points = operating_map(
            spec,
            u_grid=[0.55, 0.70, 0.80, 0.90],
            lam_grid=[1e-4, 6e-4, 1.4e-3],
            reps=args.reps,
            seed=args.seed,
            runner=runner,
        )
        print(render_operating_map(points, spec.schemes))
    elif args.study == "fixed-m":
        task = spec.task(*spec.rows[0])
        results = fixed_m_study(
            task, ms=[1, 2, 4, 8, 16], reps=args.reps, seed=args.seed,
            runner=runner,
        )
        print(f"fixed m vs num_SCP at U={spec.rows[0][0]}, λ={spec.rows[0][1]}:")
        for name in ["m=1", "m=2", "m=4", "m=8", "m=16", "adaptive"]:
            cell = results[name]
            print(f"  {name:>9}: P={cell.p:.4f} E={cell.e:9.0f}")
    elif args.study == "cost-ratio":
        print("t_s/t_cp ratio vs optimal subdivision (span=200, λ=5e-4):")
        print(f"{'ratio':>8} {'m_SCP':>6} {'m_CCP':>6}")
        for ratio, m_scp, m_ccp in cost_ratio_frontier(200.0, rate=5e-4):
            print(f"{ratio:8.2f} {m_scp:6d} {m_ccp:6d}")
    else:
        print("subdivision benefit vs fault pressure λ·T "
              "(t_s=2, t_cp=20, rate=2.8e-3):")
        print(f"{'λ·T':>8} {'SCP saving':>11} {'CCP saving':>11}")
        rows = subdivision_benefit(
            [50.0, 100.0, 200.0, 400.0, 800.0],
            rate=2.8e-3,
            store=2.0,
            compare=20.0,
        )
        for pressure, scp, ccp in rows:
            print(f"{pressure:8.3f} {scp:11.1%} {ccp:11.1%}")
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    for spec in all_table_specs():
        print(f"{spec.table_id}: {spec.title}")
    return 0


def _none_if_nan(value: Optional[float]) -> Optional[float]:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return None
    return value


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "table": _cmd_table,
        "validate": _cmd_validate,
        "demo": _cmd_demo,
        "sweep": _cmd_sweep,
        "list": _cmd_list,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
