"""Command-line interface: regenerate tables, validate shapes, demo runs.

Usage (installed as ``repro`` or via ``python -m repro``)::

    repro table 1a --reps 2000          # regenerate paper table 1(a)
    repro run spec.json --out r.json    # run a declarative StudySpec
    repro validate --reps 500           # all 8 tables + shape criteria
    repro demo --scheme A_D_S           # trace one simulated run
    repro record-golden                 # stamp reference traces
    repro replay tests/goldens          # drift-check them (first
                                        # diverging event, exit 1)
    repro list                          # available tables
    repro worker tcp://host:8642        # serve blocks for a coordinator
    repro serve --cache ~/.repro-cells  # study service daemon (HTTP)
    repro submit spec.json --url ...    # run a spec on a daemon

The Monte-Carlo commands are shims over the :mod:`repro.api` façade:
each builds a declarative :class:`~repro.api.spec.StudySpec`, runs it
in one :class:`~repro.api.session.Session`, and (with ``--out``) saves
the provenance-stamped :class:`~repro.api.results.ResultSet`;
``--resume`` reloads a partial ResultSet and computes only the missing
cells.  ``repro run`` takes the spec as a JSON file directly.

Where the cells run is one validated selector (``--backend {serial,
process,distributed}``; see :class:`repro.experiments.config.
ExecutionSettings`): ``--workers N`` sizes the process pool (and,
alone, still implies ``--backend process`` for compatibility),
``--cluster-workers N`` spawns loopback worker subprocesses for the
distributed backend.  Results are bit-identical across backends for a
fixed ``--chunk-size``.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import List, Optional

from repro.core.schemes import (
    AdaptiveCCPPolicy,
    AdaptiveDVSPolicy,
    AdaptiveSCPPolicy,
    KFaultTolerantPolicy,
    PoissonArrivalPolicy,
)
from repro.api.spec import KIND_SUMMARIES, STUDY_KINDS
from repro.errors import ReproError
from repro.experiments.config import (
    ExecutionSettings,
    all_table_specs,
    table_spec,
)
from repro.sim.backends import BACKEND_NAMES
from repro.experiments.paper_data import TABLE_IDS
from repro.experiments.report import format_table, markdown_table, shape_checks
from repro.experiments.tables import run_table
from repro.sim.energy import EnergyModel
from repro.sim.executor import simulate_run
from repro.sim.faults import PoissonFaults
from repro.sim.rng import RandomSource
from repro.sim.task import TaskSpec
from repro.sim.trace import Trace

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Energy-aware adaptive checkpointing for DMR real-time systems "
            "(reproduction of Li, Chen & Yu, DATE 2006)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table = sub.add_parser("table", help="regenerate one paper table")
    p_table.add_argument("table_id", choices=list(TABLE_IDS))
    p_table.add_argument("--reps", type=int, default=2000)
    p_table.add_argument("--seed", type=int, default=2006)
    _add_workers_flag(p_table)
    p_table.add_argument(
        "--fast-static",
        action="store_true",
        help=(
            "estimate the static scheme columns with the vectorised fast "
            "path (statistically consistent, much faster; not "
            "bit-comparable to the executor)"
        ),
    )
    p_table.add_argument("--json", action="store_true", help="emit JSON")
    p_table.add_argument(
        "--markdown", action="store_true", help="emit a markdown table"
    )
    p_table.add_argument(
        "--no-paper", action="store_true", help="hide published values"
    )
    _add_resultset_flags(p_table)

    p_run = sub.add_parser(
        "run",
        help="run a declarative study spec (JSON) through the façade",
        # Derived from STUDY_KINDS so the help text cannot drift when a
        # kind is added (pinned by tests/test_workloads.py).
        epilog=f"study kinds: {', '.join(STUDY_KINDS)}",
    )
    p_run.add_argument(
        "spec",
        nargs="?",
        default=None,
        help=(
            "path to a StudySpec JSON file, e.g. "
            "examples/table_a.spec.json (kinds: "
            f"{', '.join(STUDY_KINDS)})"
        ),
    )
    p_run.add_argument(
        "--list-kinds",
        action="store_true",
        help="list the available study kinds with a one-line summary",
    )
    _add_workers_flag(p_run)
    _add_resultset_flags(p_run)
    p_run.add_argument(
        "--csv",
        default=None,
        metavar="PATH",
        help="also export the result set as CSV",
    )
    p_run.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the rendered study output (summary line only)",
    )

    p_val = sub.add_parser(
        "validate", help="run every table and check the reproduction shape"
    )
    p_val.add_argument("--reps", type=int, default=400)
    p_val.add_argument("--seed", type=int, default=2006)
    _add_workers_flag(p_val)

    p_demo = sub.add_parser("demo", help="trace one simulated run")
    p_demo.add_argument(
        "--scheme",
        default="A_D_S",
        choices=["Poisson", "k-f-t", "A_D", "A_D_S", "A_D_C"],
    )
    p_demo.add_argument("--utilization", type=float, default=0.8)
    p_demo.add_argument("--lam", type=float, default=1.4e-3)
    p_demo.add_argument("--k", type=int, default=5)
    p_demo.add_argument("--seed", type=int, default=0)

    p_sweep = sub.add_parser(
        "sweep", help="run a sensitivity sweep / ablation study"
    )
    p_sweep.add_argument(
        "study",
        choices=["operating-map", "fixed-m", "cost-ratio", "benefit"],
    )
    p_sweep.add_argument("--reps", type=int, default=300)
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument("--table", default="1a", choices=list(TABLE_IDS))
    _add_workers_flag(p_sweep)
    _add_resultset_flags(p_sweep)

    p_record = sub.add_parser(
        "record-golden",
        help="record reference execution traces for the golden matrix",
    )
    p_record.add_argument(
        "--dir",
        default=None,
        metavar="PATH",
        help=(
            "directory to write the golden JSONL files into (default: "
            "the checkout's tests/goldens/)"
        ),
    )
    p_record.add_argument(
        "--scenario",
        action="append",
        dest="scenarios",
        default=None,
        metavar="NAME",
        help=(
            "record only this curated scenario (repeatable; default: "
            "the whole matrix)"
        ),
    )
    p_record.add_argument(
        "--list",
        action="store_true",
        dest="list_scenarios",
        help="list the curated scenario names and exit",
    )

    p_replay = sub.add_parser(
        "replay",
        help=(
            "replay golden traces against the current tree; report the "
            "first diverging event"
        ),
    )
    p_replay.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help=(
            "golden trace files (or directories of *.jsonl goldens); "
            "defaults to the checkout's tests/goldens/ with "
            "--update-goldens"
        ),
    )
    p_replay.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="also write the full drift report to this file",
    )
    p_replay.add_argument(
        "--update-goldens",
        action="store_true",
        help=(
            "re-record the golden matrix in place and print a per-file, "
            "event-level diff of what changed (for review before "
            "committing; see README 'Regenerating goldens')"
        ),
    )

    p_worker = sub.add_parser(
        "worker",
        help="serve Monte-Carlo blocks for a distributed coordinator",
    )
    p_worker.add_argument(
        "url",
        help="coordinator address, e.g. tcp://192.168.1.10:8642",
    )
    p_worker.add_argument(
        "--idle-timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help=(
            "exit after this long without hearing from the coordinator "
            "(default 120; a live coordinator pings well inside it)"
        ),
    )
    p_worker.add_argument(
        "--max-tasks",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "drop the connection after completing N blocks (fault-"
            "injection hook for the test suite; not for production)"
        ),
    )
    p_worker.add_argument(
        "--delay",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help=(
            "sleep this long before each block (slow-loris fault-"
            "injection hook for the test suite; not for production)"
        ),
    )
    p_worker.add_argument(
        "--tls-ca",
        default=None,
        metavar="PEM",
        help=(
            "connect with TLS, verifying the coordinator against this "
            "CA (or against the coordinator's own certificate for "
            "self-signed clusters)"
        ),
    )
    p_worker.add_argument(
        "--tls-cert",
        default=None,
        metavar="PEM",
        help=(
            "client certificate to present to coordinators that demand "
            "mutual TLS (requires --tls-key)"
        ),
    )
    p_worker.add_argument(
        "--tls-key",
        default=None,
        metavar="PEM",
        help="private key for --tls-cert",
    )

    p_serve = sub.add_parser(
        "serve",
        help=(
            "run the study service daemon: accept StudySpec submissions "
            "over HTTP, memoise cells in a content-addressed cache"
        ),
    )
    p_serve.add_argument(
        "--cache",
        required=True,
        metavar="DIR",
        help=(
            "directory for the content-addressed cell cache (created if "
            "missing); overlapping studies share its entries"
        ),
    )
    p_serve.add_argument(
        "--serve-url",
        default=None,
        metavar="URL",
        help=(
            "bind address, e.g. http://127.0.0.1:8750 (the default); "
            "port 0 picks a free port and prints it"
        ),
    )
    p_serve.add_argument(
        "--verbose",
        action="store_true",
        help="log each HTTP request to stderr",
    )
    p_serve.add_argument(
        "--max-pending",
        type=_nonneg_int,
        default=None,
        metavar="N",
        help=(
            "admission bound: reject submissions with 503 + Retry-After "
            "once this many are in flight (default 32; 0 = unbounded)"
        ),
    )
    p_serve.add_argument(
        "--fair-cells",
        type=_nonneg_int,
        default=None,
        metavar="N",
        help=(
            "cells per compute turn: concurrent submissions round-robin "
            "at this granularity instead of queueing whole studies "
            "(default 8; 0 = one monolithic batch per submission)"
        ),
    )
    p_serve.add_argument(
        "--request-timeout",
        type=_nonneg_float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-connection socket timeout so stalled clients cannot pin "
            "handler threads (default 60; 0 = never time out)"
        ),
    )
    _add_workers_flag(p_serve)

    p_submit = sub.add_parser(
        "submit",
        help="run a StudySpec JSON file on a running study service",
    )
    p_submit.add_argument(
        "spec",
        help="path to a StudySpec JSON file (same format as 'repro run')",
    )
    p_submit.add_argument(
        "--url",
        default=None,
        metavar="URL",
        help="service address (default http://127.0.0.1:8750)",
    )
    p_submit.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help=(
            "save the returned ResultSet as JSON — byte-compatible with "
            "a local 'repro run --out' of the same study"
        ),
    )
    p_submit.add_argument(
        "--csv",
        default=None,
        metavar="PATH",
        help="also export the returned result set as CSV",
    )
    p_submit.add_argument(
        "--stream",
        action="store_true",
        help="stream per-cell progress lines as the service resolves them",
    )
    p_submit.add_argument(
        "--timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="give up if the service has not answered within this long",
    )
    p_submit.add_argument(
        "--retries",
        type=_nonneg_int,
        default=None,
        metavar="N",
        help=(
            "retry transient failures (connection refused, 503) this "
            "many times with jittered backoff (default 3; 0 = fail fast)"
        ),
    )

    p_cache = sub.add_parser(
        "cache",
        help="inspect or prune a study service's cell cache",
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_prune = cache_sub.add_parser(
        "prune",
        help="evict cold cache entries (oldest mtime first)",
    )
    p_prune.add_argument(
        "--cache",
        required=True,
        metavar="DIR",
        help="cell cache directory (same flag as 'repro serve')",
    )
    p_prune.add_argument(
        "--max-bytes",
        type=_nonneg_int,
        default=None,
        metavar="N",
        help="shrink the store to at most this many bytes",
    )
    p_prune.add_argument(
        "--max-age",
        type=_nonneg_float,
        default=None,
        metavar="DAYS",
        help="drop entries not written/touched within this many days",
    )
    p_prune.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be removed without deleting anything",
    )
    p_stats = cache_sub.add_parser(
        "stats",
        help="print entry count and location of a cell cache",
    )
    p_stats.add_argument(
        "--cache",
        required=True,
        metavar="DIR",
        help="cell cache directory",
    )

    sub.add_parser("list", help="list the available tables")
    return parser


def _positive_int(text: str) -> int:
    """argparse type: an integer >= 1 (used by ``--chunk-size``)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _positive_float(text: str) -> float:
    """argparse type: a finite float > 0 (used by ``--idle-timeout``)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}")
    if not math.isfinite(value) or value <= 0:
        raise argparse.ArgumentTypeError(f"must be a finite value > 0, got {value}")
    return value


def _nonneg_int(text: str) -> int:
    """argparse type: an integer >= 0, where 0 disables the knob."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _nonneg_float(text: str) -> float:
    """argparse type: a finite float >= 0, where 0 disables the knob."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}")
    if not math.isfinite(value) or value < 0:
        raise argparse.ArgumentTypeError(
            f"must be a finite value >= 0, got {value}"
        )
    return value


def _add_resultset_flags(parser: argparse.ArgumentParser) -> None:
    """The shared ResultSet persistence flags (table / run / sweep)."""
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help=(
            "save the provenance-stamped ResultSet as JSON (exact "
            "round-trip; reload with --resume or ResultSet.load)"
        ),
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help=(
            "resume from a partial ResultSet: cells it already holds "
            "are reused verbatim, only missing cells are computed.  A "
            "missing file starts fresh (so the same command line works "
            "for the first run and every retry)."
        ),
    )


def _add_workers_flag(parser: argparse.ArgumentParser) -> None:
    """The shared execution flags (table / validate / sweep)."""
    parser.add_argument(
        "--backend",
        choices=list(BACKEND_NAMES),
        default=None,
        help=(
            "where Monte-Carlo cells run (default: serial, or a process "
            "pool when --workers > 1).  'distributed' dispatches blocks "
            "to socket workers — spawn loopback ones with "
            "--cluster-workers, or start them elsewhere with "
            "'repro worker'.  Results are bit-identical across backends "
            "for a fixed --chunk-size."
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes for the process backend (unset/1 = "
            "serial unless --backend process is given; 0 = one per "
            "CPU).  Results are identical for any value."
        ),
    )
    parser.add_argument(
        "--cluster-workers",
        type=int,
        default=0,
        metavar="N",
        help=(
            "with --backend distributed: spawn N loopback worker "
            "subprocesses for this run (0 = expect external workers)"
        ),
    )
    parser.add_argument(
        "--url",
        default=None,
        metavar="TCP_URL",
        help=(
            "with --backend distributed: coordinator bind address "
            "(e.g. tcp://0.0.0.0:8642) for externally started "
            "'repro worker' processes; default loopback"
        ),
    )
    parser.add_argument(
        "--chunk-size",
        type=_positive_int,
        default=None,
        metavar="REPS",
        help=(
            "reps per block — the unit of scheduling AND of the blocked "
            "statistics reduction (default 256).  For a fixed value, "
            "results are bit-identical across any --workers/--backend; "
            "record it with the seed when reproducibility matters."
        ),
    )
    parser.add_argument(
        "--no-adaptive-batch",
        action="store_true",
        help=(
            "disable latency-adaptive dispatch batching on the parallel "
            "backends (worker batches sized from an EWMA of observed "
            "block latency).  Dispatch-only: results are bit-identical "
            "with batching on or off."
        ),
    )
    parser.add_argument(
        "--kernel",
        choices=["exact", "fast"],
        default=None,
        help=(
            "executor kernel: 'exact' (default) is the per-rep engine, "
            "bit-identical run to run; 'fast' is the vectorised "
            "block-deterministic engine — statistically equivalent, "
            "roughly an order of magnitude faster, reproducible for a "
            "fixed seed and --chunk-size but not bit-comparable to "
            "exact results"
        ),
    )
    parser.add_argument(
        "--tls-cert",
        default=None,
        metavar="PEM",
        help=(
            "with --backend distributed: serve TLS on the coordinator "
            "socket with this certificate (requires --tls-key; workers "
            "verify it via their --tls-ca)"
        ),
    )
    parser.add_argument(
        "--tls-key",
        default=None,
        metavar="PEM",
        help="private key for --tls-cert",
    )
    parser.add_argument(
        "--tls-ca",
        default=None,
        metavar="PEM",
        help=(
            "with --tls-cert: also require workers to present client "
            "certificates signed by this CA (mutual TLS).  Spawned "
            "--cluster-workers inherit the right flags automatically."
        ),
    )
    parser.add_argument(
        "--connect-timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help=(
            "with --backend distributed: how long to wait for workers "
            "to join before starting (default 10; raise on slow hosts)"
        ),
    )
    parser.add_argument(
        "--straggler-factor",
        type=float,
        default=None,
        metavar="X",
        help=(
            "with --backend distributed: speculatively re-dispatch a "
            "task in flight longer than X times its kind's expected "
            "block time (default 4; 0 disables speculation).  Duplicate "
            "results deduplicate, so output is bit-identical either way."
        ),
    )


def _make_runner(args: argparse.Namespace) -> Optional["BatchRunner"]:
    """The runner the execution flags describe (None = implicit serial).

    All validation lives in :class:`~repro.experiments.config.
    ExecutionSettings` — contradictory flag combinations raise a
    :class:`~repro.errors.ConfigurationError`, which ``main`` reports
    as exit code 2 like every other configuration problem.
    """
    return ExecutionSettings.from_cli_args(args).make_runner()


def _close_runner(runner: Optional["BatchRunner"]) -> None:
    if runner is not None:
        runner.close()


def _load_resume(path: Optional[str]):
    """The partial ResultSet behind ``--resume`` (None = fresh run).

    A missing file is a fresh start, not an error, so the same command
    line works for the first run and every retry after a crash.
    """
    if path is None:
        return None
    import os

    from repro.api import ResultSet

    if not os.path.exists(path):
        print(
            f"repro: note: resume file {path!r} not found; starting fresh",
            file=sys.stderr,
        )
        return None
    return ResultSet.load(path)


def _run_study(args: argparse.Namespace, study):
    """Run a study on one Session built from the execution flags.

    Handles ``--resume`` (reuse cells, compute only missing) and
    ``--out`` (save the completed ResultSet); returns the completed
    set plus how many cells were reused.
    """
    import os

    from repro.api import Session
    from repro.errors import ConfigurationError

    out = getattr(args, "out", None)
    if out:
        # Fail before computing, not after: an unwritable --out would
        # otherwise discard a whole study's worth of work.
        directory = os.path.dirname(os.path.abspath(out)) or "."
        if not os.path.isdir(directory):
            raise ConfigurationError(
                f"--out directory does not exist: {directory!r}"
            )
    resume = _load_resume(getattr(args, "resume", None))
    with Session(ExecutionSettings.from_cli_args(args)) as session:
        results = study.run(session, resume=resume)
    if out:
        results.save(out)
    return results, (len(resume) if resume is not None else 0)


def _table_result_from(study, results):
    """A rendered-table view of a table-kind study's ResultSet."""
    from repro.experiments.tables import assemble_table_result

    tspec = study.table if study.table is not None else table_spec(study.spec.table)
    return assemble_table_result(
        tspec,
        reps=study.spec.reps,
        seed=study.spec.seed,
        estimates=[record.estimate for record in results],
    )


def _demo_policy(scheme: str):
    if scheme == "Poisson":
        return PoissonArrivalPolicy(1.0)
    if scheme == "k-f-t":
        return KFaultTolerantPolicy(1.0)
    if scheme == "A_D":
        return AdaptiveDVSPolicy()
    if scheme == "A_D_C":
        return AdaptiveCCPPolicy()
    return AdaptiveSCPPolicy()


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.api import Study, StudySpec

    study = Study(
        StudySpec(
            kind="table",
            table=args.table_id,
            reps=args.reps,
            seed=args.seed,
            fast_static=args.fast_static,
        )
    )
    results, _reused = _run_study(args, study)
    result = _table_result_from(study, results)
    if args.json:
        payload = {
            "table": args.table_id,
            "reps": args.reps,
            "seed": args.seed,
            "rows": [
                {
                    "u": row.u,
                    "lam": row.lam,
                    "cells": {
                        scheme: {
                            "p": row.cell(scheme).p,
                            "e": None
                            if math.isnan(row.cell(scheme).e)
                            else row.cell(scheme).e,
                            "paper_p": getattr(row.cell(scheme).paper, "p", None),
                            "paper_e": _none_if_nan(
                                getattr(row.cell(scheme).paper, "e", None)
                            ),
                        }
                        for scheme in result.schemes
                    },
                }
                for row in result.rows
            ],
        }
        print(json.dumps(payload, indent=2))
    elif args.markdown:
        print(markdown_table(result))
    else:
        print(format_table(result, show_paper=not args.no_paper))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    failures: List[str] = []
    runner = _make_runner(args)
    try:
        for spec in all_table_specs():
            result = run_table(
                spec, reps=args.reps, seed=args.seed, runner=runner
            )
            checks = shape_checks(result)
            bad = [c for c in checks if not c.passed]
            status = "ok" if not bad else f"{len(bad)} FAILED"
            print(f"table {spec.table_id}: {len(checks)} checks, {status}")
            for check in bad:
                print(f"  {check}")
                failures.append(f"{spec.table_id}: {check.name}")
    finally:
        _close_runner(runner)
    if failures:
        print(f"\n{len(failures)} shape criteria failed")
        return 1
    print("\nall shape criteria passed")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.core.checkpoints import CostModel

    costs = (
        CostModel.ccp_favourable()
        if args.scheme == "A_D_C"
        else CostModel.scp_favourable()
    )
    task = TaskSpec(
        cycles=args.utilization * 10_000,
        deadline=10_000,
        fault_budget=args.k,
        fault_rate=args.lam,
        costs=costs,
    )
    trace = Trace()
    result = simulate_run(
        task,
        _demo_policy(args.scheme),
        PoissonFaults(task.fault_rate),
        EnergyModel.paper_dmr(),
        RandomSource(args.seed).generator(),
        recorder=trace,
    )
    print(
        f"scheme={args.scheme} U={args.utilization} λ={args.lam} k={args.k} "
        f"seed={args.seed}"
    )
    print(trace.render())
    print(
        f"completed={result.completed} timely={result.timely} "
        f"t={result.finish_time:.1f} E={result.energy:.0f} "
        f"faults={result.detected_faults} checkpoints={result.checkpoints}"
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.sensitivity import (
        assemble_operating_points,
        cost_ratio_frontier,
        render_operating_map,
        subdivision_benefit,
    )

    spec = table_spec(args.table)
    if args.study in ("operating-map", "fixed-m"):
        from repro.api import Study, StudySpec

        if args.study == "operating-map":
            study = Study(
                StudySpec(
                    kind="operating_map",
                    table=args.table,
                    reps=args.reps,
                    seed=args.seed,
                    u_grid=(0.55, 0.70, 0.80, 0.90),
                    lam_grid=(1e-4, 6e-4, 1.4e-3),
                )
            )
        else:
            study = Study(
                StudySpec(
                    kind="fixed_m",
                    table=args.table,
                    reps=args.reps,
                    seed=args.seed,
                    ms=(1, 2, 4, 8, 16),
                )
            )
        results, _reused = _run_study(args, study)
        if args.study == "operating-map":
            points = assemble_operating_points(
                spec,
                study.cells(),
                [record.estimate for record in results],
            )
            print(render_operating_map(points, spec.schemes))
        else:
            resolved = study.spec
            print(
                f"fixed m vs num_SCP at U={resolved.u}, "
                f"λ={resolved.lam}:"
            )
            for record in results:
                cell = record.estimate
                print(f"  {record.key:>9}: P={cell.p:.4f} E={cell.e:9.0f}")
        return 0
    if args.out or args.resume:
        print(
            f"error: --out/--resume only apply to Monte-Carlo studies "
            f"(operating-map, fixed-m), not {args.study!r}",
            file=sys.stderr,
        )
        return 2
    if args.study == "cost-ratio":
        print("t_s/t_cp ratio vs optimal subdivision (span=200, λ=5e-4):")
        print(f"{'ratio':>8} {'m_SCP':>6} {'m_CCP':>6}")
        for ratio, m_scp, m_ccp in cost_ratio_frontier(200.0, rate=5e-4):
            print(f"{ratio:8.2f} {m_scp:6d} {m_ccp:6d}")
    else:
        print("subdivision benefit vs fault pressure λ·T "
              "(t_s=2, t_cp=20, rate=2.8e-3):")
        print(f"{'λ·T':>8} {'SCP saving':>11} {'CCP saving':>11}")
        rows = subdivision_benefit(
            [50.0, 100.0, 200.0, 400.0, 800.0],
            rate=2.8e-3,
            store=2.0,
            compare=20.0,
        )
        for pressure, scp, ccp in rows:
            print(f"{pressure:8.3f} {scp:11.1%} {ccp:11.1%}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.api import Study

    if args.list_kinds:
        width = max(len(kind) for kind in STUDY_KINDS)
        for kind in STUDY_KINDS:
            print(f"{kind:<{width}}  {KIND_SUMMARIES[kind]}")
        return 0
    if args.spec is None:
        print(
            "error: a spec path is required (or use --list-kinds)",
            file=sys.stderr,
        )
        return 2
    study = Study.from_file(args.spec)
    results, reused = _run_study(args, study)
    computed = len(results) - reused
    spec = study.spec
    print(
        f"study kind={spec.kind} table={spec.table} "
        f"spec_hash={study.spec_hash}: {len(results)} cells "
        f"({computed} computed, {reused} reused)"
    )
    if args.csv:
        results.save_csv(args.csv)
    if not args.quiet:
        if spec.kind == "table":
            print(format_table(_table_result_from(study, results)))
        elif spec.kind == "operating_map":
            from repro.experiments.sensitivity import (
                assemble_operating_points,
                render_operating_map,
            )

            tspec = study.table or table_spec(spec.table)
            points = assemble_operating_points(
                tspec,
                study.cells(),
                [record.estimate for record in results],
            )
            print(render_operating_map(points, tspec.schemes))
        elif spec.kind == "frontier":
            from repro.workloads import pareto_points, render_frontier

            points = pareto_points(
                (
                    record.axes["f"],
                    record.axes["m"],
                    record.estimate.p,
                    record.estimate.mean_finish_time_timely,
                    record.estimate.e,
                )
                for record in results
            )
            print(render_frontier(points))
        else:
            for record in results:
                cell = record.estimate
                e_text = "NaN" if math.isnan(cell.e) else f"{cell.e:.0f}"
                print(f"  {record.key}: P={cell.p:.4f} E={e_text}")
    return 0


def _cmd_record_golden(args: argparse.Namespace) -> int:
    from repro.goldens import (
        default_golden_dir,
        read_golden,
        record_matrix,
        scenario_names,
    )

    if args.list_scenarios:
        for name in scenario_names():
            print(name)
        return 0
    directory = args.dir if args.dir is not None else default_golden_dir()
    paths = record_matrix(directory, names=args.scenarios)
    for path in paths:
        _header, events = read_golden(path)
        print(f"recorded {path} ({len(events)} events)")
    return 0


def _cmd_update_goldens(args: argparse.Namespace) -> int:
    """``repro replay --update-goldens``: re-record + reviewable diff."""
    import os

    from repro.goldens import default_golden_dir, update_goldens

    directory = args.paths[0] if args.paths else default_golden_dir()
    if len(args.paths) > 1 or (args.paths and not os.path.isdir(directory)):
        print(
            "error: --update-goldens takes at most one golden *directory*",
            file=sys.stderr,
        )
        return 2
    updates = update_goldens(directory)
    blocks = [update.render() for update in updates]
    text = "\n".join(blocks) + "\n"
    print(text, end="")
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(text)
    changed = [u for u in updates if not u.identical]
    if changed:
        print(
            f"\n{len(changed)} of {len(updates)} golden(s) rewritten with "
            f"changes — review the diffs above (and `git diff`) before "
            f"committing"
        )
    else:
        print(f"\nall {len(updates)} golden(s) re-recorded bit-identically")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.goldens import replay_paths

    if args.update_goldens:
        return _cmd_update_goldens(args)
    if not args.paths:
        print(
            "error: replay needs golden paths (or --update-goldens)",
            file=sys.stderr,
        )
        return 2
    reports = replay_paths(args.paths)
    blocks = [report.render() for report in reports]
    text = "\n\n".join(blocks) + "\n"
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(text)
    drifted = [report for report in reports if not report.ok]
    for report in reports:
        if report.ok:
            print(
                f"ok: {report.scenario_name} "
                f"({report.events_matched}/{report.events_total} events)"
            )
    if drifted:
        print()
        for report in drifted:
            print(report.render())
            print()
        print(
            f"{len(drifted)} of {len(reports)} golden trace(s) drifted",
            file=sys.stderr,
        )
        return 1
    print(f"all {len(reports)} golden trace(s) replay identically")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.sim.distributed import TLSConfig, serve_worker

    kwargs = {}
    if args.idle_timeout is not None:
        kwargs["idle_timeout"] = args.idle_timeout
    if args.max_tasks is not None:
        kwargs["max_tasks"] = args.max_tasks
    if args.delay is not None:
        kwargs["delay"] = args.delay
    if args.tls_ca or args.tls_cert:
        kwargs["tls"] = TLSConfig(
            cert=args.tls_cert, key=args.tls_key, ca=args.tls_ca
        )
    try:
        return serve_worker(args.url, **kwargs)
    except OSError as exc:
        print(f"error: cannot reach coordinator {args.url}: {exc}",
              file=sys.stderr)
        return 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import serve_forever
    from repro.service.server import DEFAULT_URL

    url = args.serve_url if args.serve_url is not None else DEFAULT_URL
    # The daemon has defensive defaults; an explicit 0 disables a knob
    # (mapped to None), and None keeps serve_forever's default.
    kwargs = {}
    if args.max_pending is not None:
        kwargs["max_pending"] = args.max_pending or None
    if args.fair_cells is not None:
        kwargs["fair_share"] = args.fair_cells or None
    if args.request_timeout is not None:
        kwargs["request_timeout"] = args.request_timeout or None
    return serve_forever(
        ExecutionSettings.from_cli_args(args),
        args.cache,
        url,
        verbose=args.verbose,
        **kwargs,
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    import os

    from repro.api import ResultSet
    from repro.api.results import json_loads_exact
    from repro.errors import ConfigurationError
    from repro.service import submit_study
    from repro.service.server import DEFAULT_URL

    if args.out:
        directory = os.path.dirname(os.path.abspath(args.out)) or "."
        if not os.path.isdir(directory):
            raise ConfigurationError(
                f"--out directory does not exist: {directory!r}"
            )
    try:
        with open(args.spec, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ConfigurationError(f"cannot read spec file {args.spec!r}: {exc}")
    payload = json_loads_exact(text, what=f"spec file {args.spec!r}")
    url = args.url if args.url is not None else DEFAULT_URL

    def show_cell(event):
        if event.get("event") == "cell":
            verb = "cached" if event.get("cached") else "computed"
            print(
                f"  [{event.get('done')}/{event.get('total')}] "
                f"{event.get('key')}: {verb}"
            )

    kwargs = {}
    if args.timeout is not None:
        kwargs["timeout"] = args.timeout
    if args.retries is not None:
        kwargs["retries"] = args.retries
    envelope = submit_study(
        url,
        payload,
        stream=args.stream,
        on_event=show_cell if args.stream else None,
        **kwargs,
    )
    results = ResultSet.from_dict(envelope["result"])
    print(
        f"study kind={envelope.get('kind')} "
        f"spec_hash={envelope.get('spec_hash')}: {len(results)} cells "
        f"({envelope.get('computed')} computed, "
        f"{envelope.get('cached')} cached by the service)"
    )
    if args.out:
        results.save(args.out)
    if args.csv:
        results.save_csv(args.csv)
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    for spec in all_table_specs():
        print(f"{spec.table_id}: {spec.title}")
    return 0


def _none_if_nan(value: Optional[float]) -> Optional[float]:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return None
    return value


def _cmd_cache(args: argparse.Namespace) -> int:
    """``repro cache prune|stats``: maintain a service cell cache."""
    from repro.service.cache import CellCache

    cache = CellCache(args.cache, memory=False)
    if args.cache_command == "stats":
        stats = cache.stats()
        print(f"cache {stats['directory']}: {stats['entries']} entries")
        return 0
    if args.max_bytes is None and args.max_age is None:
        print(
            "error: give at least one of --max-bytes / --max-age",
            file=sys.stderr,
        )
        return 2
    max_age_seconds = (
        None if args.max_age is None else args.max_age * 86_400.0
    )
    report = cache.prune(
        max_bytes=args.max_bytes,
        max_age_seconds=max_age_seconds,
        dry_run=args.dry_run,
    )
    print(report.render())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "table": _cmd_table,
        "run": _cmd_run,
        "validate": _cmd_validate,
        "demo": _cmd_demo,
        "sweep": _cmd_sweep,
        "record-golden": _cmd_record_golden,
        "replay": _cmd_replay,
        "worker": _cmd_worker,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "cache": _cmd_cache,
        "list": _cmd_list,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
