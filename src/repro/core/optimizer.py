"""Optimal checkpoint-subdivision procedures (paper fig. 2).

``num_scp`` / ``num_ccp`` compute the number of sub-intervals ``m`` that
minimises the expected CSCP-interval time ``R1(m)`` / ``R2(m)``:

1. find the continuous minimiser ``T̃`` of the renewal model over
   ``(0, T]`` — closed form for SCPs, bounded Brent search for CCPs;
2. if ``T̃ ≥ T`` the interval is not subdivided (``m = 1``);
3. otherwise round ``T/T̃`` down and compare ``R(m)`` with ``R(m+1)``,
   keeping the smaller (paper fig. 2 lines 3-6).

Brute-force search over all integers is provided for validation and as
a safety net for callers who prefer exactness over speed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from scipy.optimize import minimize_scalar

from repro.core import renewal
from repro.errors import ParameterError

__all__ = [
    "SubdivisionPlan",
    "num_scp",
    "num_ccp",
    "brute_force_num_scp",
    "brute_force_num_ccp",
    "DEFAULT_MAX_SUBDIVISIONS",
]

#: Upper clamp on the subdivision count.  Only reachable for degenerate
#: inputs (e.g. free stores, ``t_s = 0``); real parameterisations stay
#: far below it.
DEFAULT_MAX_SUBDIVISIONS = 4096


@dataclass(frozen=True)
class SubdivisionPlan:
    """Result of a subdivision optimisation.

    Attributes
    ----------
    m:
        Number of equal sub-intervals of the CSCP interval (``m − 1``
        additional SCPs/CCPs are inserted).
    sublength:
        ``T/m`` — length of each sub-interval (time units).
    expected_time:
        Modelled expected time to complete the CSCP interval.
    """

    m: int
    sublength: float
    expected_time: float


def _integer_refine(
    span: float,
    continuous_opt: float,
    objective: Callable[[int], float],
    max_m: int,
) -> SubdivisionPlan:
    """Paper fig. 2: floor ``T/T̃`` and compare with its successor.

    ``objective`` is pure, so evaluations are memoised — the refined
    ``m``'s value is computed once, not re-evaluated for the returned
    plan (this sits on the adaptive schemes' per-fault replan path).
    """
    cache: dict = {}

    def value(m: int) -> float:
        result = cache.get(m)
        if result is None:
            result = objective(m)
            cache[m] = result
        return result

    if not continuous_opt > 0 or continuous_opt >= span:
        m = 1
    else:
        m = max(1, min(int(span / continuous_opt), max_m - 1))
        if value(m) > value(m + 1):
            m += 1
    return SubdivisionPlan(m=m, sublength=span / m, expected_time=value(m))


def num_scp(
    span: float,
    *,
    rate: float,
    store: float,
    compare: float,
    rollback: float = 0.0,
    max_m: int = DEFAULT_MAX_SUBDIVISIONS,
) -> SubdivisionPlan:
    """Optimal SCP subdivision of a CSCP interval (paper ``num_SCP``).

    Uses the closed-form continuous minimiser
    ``T̃1 = sqrt(T·t_s·coth(rT/2))`` (see
    :func:`repro.core.renewal.scp_optimal_sublength`) followed by the
    floor/ceil comparison of paper fig. 2.

    Degenerate inputs: with ``rate = 0`` extra stores can only cost
    time, so ``m = 1``; with ``store = 0`` stores are free and the model
    improves monotonically with ``m`` — the count is clamped to
    ``max_m``.
    """
    _check_args(span, rate, max_m)

    def objective(m: int) -> float:
        return renewal.scp_interval_time_for_m(
            m, span=span, rate=rate, store=store, compare=compare, rollback=rollback
        )

    if rate == 0:
        return SubdivisionPlan(m=1, sublength=span, expected_time=objective(1))
    if store == 0:
        return SubdivisionPlan(
            m=max_m, sublength=span / max_m, expected_time=objective(max_m)
        )
    opt = renewal.scp_optimal_sublength(span, rate=rate, store=store)

    # Inlined _integer_refine over an inlined R1: this sits on the
    # adaptive schemes' per-fault replan path, so the two candidate
    # evaluations share one argument validation and one ``expm1``
    # (both value-deterministic) while performing R1's float operations
    # in exactly scp_interval_time's order — tests/test_optimizer.py
    # pins exact agreement of the fast path with the objective.
    renewal._validate(span, rate, store, compare, rollback)
    refine = 0 < opt < span  # fig. 2's "else" branch (NaN/inf ⇒ m = 1)
    if refine:
        m = max(1, min(int(span / opt), max_m - 1))
    else:
        m = 1
    faults = renewal.expected_faults_per_interval(span, rate)

    def r1(m_int: int) -> float:
        # scp_interval_time(span / m_int, ...), op for op — including
        # recomputing the continuous m as span/sublength, whose float
        # value is *not* always m_int.
        sublength = span / m_int
        m_cont = span / sublength
        fault_free = span + m_cont * store + compare
        per_fault = (
            (span + sublength) / 2.0
            + (m_cont + 1.0) / 2.0 * store
            + compare
            + rollback
        )
        return fault_free + per_fault * faults

    best = r1(m)
    if refine:
        successor = r1(m + 1)
        if best > successor:
            m += 1
            best = successor
    return SubdivisionPlan(m=m, sublength=span / m, expected_time=best)


def num_ccp(
    span: float,
    *,
    rate: float,
    store: float,
    compare: float,
    rollback: float = 0.0,
    max_m: int = DEFAULT_MAX_SUBDIVISIONS,
) -> SubdivisionPlan:
    """Optimal CCP subdivision of a CSCP interval (paper ``num_CCP``).

    ``R2`` has no elementary continuous minimiser; the paper prescribes
    "the similar approach described in figure 2", which we realise with
    a bounded Brent search for ``T̃2`` over ``(0, T]`` followed by the
    same floor/ceil integer refinement.

    With ``rate = 0`` extra comparisons are pure overhead, so ``m = 1``;
    with ``compare = 0`` they are free and ``m`` clamps to ``max_m``.
    """
    _check_args(span, rate, max_m)

    def objective(m: int) -> float:
        return renewal.ccp_interval_time_for_m(
            m, span=span, rate=rate, store=store, compare=compare, rollback=rollback
        )

    if rate == 0:
        return SubdivisionPlan(m=1, sublength=span, expected_time=objective(1))
    if compare == 0:
        return SubdivisionPlan(
            m=max_m, sublength=span / max_m, expected_time=objective(max_m)
        )

    def continuous(t2: float) -> float:
        return renewal.ccp_interval_time(
            t2, span=span, rate=rate, store=store, compare=compare, rollback=rollback
        )

    lo = span / max_m
    result = minimize_scalar(continuous, bounds=(lo, span), method="bounded")
    opt = float(result.x) if result.success else span
    return _integer_refine(span, opt, objective, max_m)


def brute_force_num_scp(
    span: float,
    *,
    rate: float,
    store: float,
    compare: float,
    rollback: float = 0.0,
    max_m: int = DEFAULT_MAX_SUBDIVISIONS,
) -> SubdivisionPlan:
    """Exact integer argmin of ``R1(m)`` by exhaustive search.

    ``R1(m)`` is convex in ``m`` for positive costs, so the scan stops
    as soon as the objective starts increasing.
    """
    _check_args(span, rate, max_m)

    def objective(m: int) -> float:
        return renewal.scp_interval_time_for_m(
            m, span=span, rate=rate, store=store, compare=compare, rollback=rollback
        )

    return _scan(span, objective, max_m)


def brute_force_num_ccp(
    span: float,
    *,
    rate: float,
    store: float,
    compare: float,
    rollback: float = 0.0,
    max_m: int = DEFAULT_MAX_SUBDIVISIONS,
) -> SubdivisionPlan:
    """Exact integer argmin of ``R2(m)`` by exhaustive search."""
    _check_args(span, rate, max_m)

    def objective(m: int) -> float:
        return renewal.ccp_interval_time_for_m(
            m, span=span, rate=rate, store=store, compare=compare, rollback=rollback
        )

    return _scan(span, objective, max_m)


def _scan(
    span: float, objective: Callable[[int], float], max_m: int
) -> SubdivisionPlan:
    best_m, best_val = 1, objective(1)
    rising = 0
    for m in range(2, max_m + 1):
        val = objective(m)
        if val < best_val:
            best_m, best_val = m, val
            rising = 0
        else:
            # The objectives are unimodal in m; a short patience window
            # guards against flat plateaus from floating-point noise.
            rising += 1
            if rising >= 8:
                break
    return SubdivisionPlan(m=best_m, sublength=span / best_m, expected_time=best_val)


def _check_args(span: float, rate: float, max_m: int) -> None:
    if not span > 0 or not math.isfinite(span):
        raise ParameterError(f"span must be positive and finite, got {span}")
    if rate < 0:
        raise ParameterError(f"rate must be >= 0, got {rate}")
    if max_m < 1:
        raise ParameterError(f"max_m must be >= 1, got {max_m}")
