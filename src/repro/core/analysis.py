"""Closed-form predictions used to cross-validate the simulator.

For *static* schemes (fixed speed, fixed interval) the run decomposes
into independent per-interval renewal processes, so both the expected
completion time and the probability of finishing by the deadline have
closed forms.  The test-suite holds the Monte-Carlo executor to these
predictions — a strong end-to-end correctness check of fault injection,
detection, rollback and timing.

Model (matching the executor's defaults): faults arrive Poisson at
``rate`` in wall-clock time; an interval of useful length ``L`` plus
checkpoint ``C`` succeeds iff no fault lands in its execution portion
(probability ``exp(−rate·L)``); a failed attempt costs the same
``L + C`` (detection at the closing comparison) plus ``t_r``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from scipy.stats import nbinom

from repro.errors import ParameterError

__all__ = [
    "StaticSchedule",
    "static_schedule",
    "static_expected_time",
    "static_timely_probability",
    "expected_time_with_subdivision",
]


@dataclass(frozen=True)
class StaticSchedule:
    """The interval layout of a static scheme at a fixed speed."""

    interval_lengths: List[float]  # useful time per interval (at speed f)
    checkpoint_cost: float  # C = c/f
    rollback_cost: float  # t_r/f
    rate: float

    @property
    def n_intervals(self) -> int:
        return len(self.interval_lengths)

    @property
    def work(self) -> float:
        return sum(self.interval_lengths)


def static_schedule(
    work_time: float,
    interval: float,
    *,
    checkpoint_cost: float,
    rate: float,
    rollback_cost: float = 0.0,
) -> StaticSchedule:
    """Split ``work_time`` into equal intervals with a shorter tail.

    Mirrors the executor: every interval is ``interval`` long except the
    final one, which takes the remainder; each is closed by a CSCP.
    """
    if work_time <= 0:
        raise ParameterError(f"work_time must be > 0, got {work_time}")
    if interval <= 0:
        raise ParameterError(f"interval must be > 0, got {interval}")
    lengths = []
    remaining = work_time
    while remaining > 1e-12:
        span = min(interval, remaining)
        lengths.append(span)
        remaining -= span
    return StaticSchedule(
        interval_lengths=lengths,
        checkpoint_cost=checkpoint_cost,
        rollback_cost=rollback_cost,
        rate=rate,
    )


def static_expected_time(schedule: StaticSchedule) -> float:
    """Exact expected completion time (deadline ignored).

    Each interval is an independent renewal process with expected time
    ``(L + C)·e^{rate·L} + t_r·(e^{rate·L} − 1)`` (geometric retries with
    success probability ``e^{−rate·L}``); the total is the sum.
    """
    total = 0.0
    for length in schedule.interval_lengths:
        boost = math.exp(schedule.rate * length)
        total += (length + schedule.checkpoint_cost) * boost
        total += schedule.rollback_cost * (boost - 1.0)
    return total


def static_timely_probability(schedule: StaticSchedule, deadline: float) -> float:
    """Exact P(completion time ≤ deadline) for a uniform schedule.

    Requires all interval lengths equal (within tolerance) so the total
    time is ``(n + F)·(L + C) + F·t_r`` with ``F`` the total number of
    failed attempts; ``F`` follows a negative binomial with ``n``
    successes and success probability ``e^{−rate·L}``.  For non-uniform
    tails the bound is still exact if the tail's attempt cost is no
    larger — we conservatively use the dominant (full) attempt cost and
    treat the tail's success probability separately via the product of
    per-interval probabilities when no failures are affordable.
    """
    if deadline <= 0:
        return 0.0
    lengths = schedule.interval_lengths
    if not lengths:
        return 1.0
    n = len(lengths)
    length = lengths[0]
    uniform = all(abs(l - length) < 1e-9 for l in lengths)
    if not uniform:
        # Mixed layout: exact computation by dynamic programming over
        # the (small) number of affordable failures per interval type.
        return _timely_probability_dp(schedule, deadline)
    attempt = length + schedule.checkpoint_cost
    failure_extra = attempt + schedule.rollback_cost
    budget = deadline - n * attempt
    if budget < 0:
        return 0.0
    allowed_failures = int(math.floor(budget / failure_extra + 1e-12))
    p_success = math.exp(-schedule.rate * length)
    if p_success >= 1.0:
        return 1.0
    return float(nbinom.cdf(allowed_failures, n, p_success))


def _timely_probability_dp(schedule: StaticSchedule, deadline: float) -> float:
    """Exact timely probability for non-uniform interval layouts.

    State: probability mass over elapsed-time quantised per failure
    pattern.  Failure counts are truncated where the deadline is already
    blown, so the state space stays tiny for realistic parameters.
    """
    states = {0.0: 1.0}  # elapsed time -> probability
    for length in schedule.interval_lengths:
        attempt = length + schedule.checkpoint_cost
        extra = attempt + schedule.rollback_cost
        p = math.exp(-schedule.rate * length)
        next_states: dict = {}
        for elapsed, prob in states.items():
            base = elapsed + attempt
            if base > deadline:
                continue  # this path can never finish on time
            failures = 0
            weight = prob
            while True:
                t = base + failures * extra
                if t > deadline:
                    break
                mass = weight * p * (1.0 - p) ** failures
                key = round(t, 9)
                next_states[key] = next_states.get(key, 0.0) + mass
                failures += 1
                if failures > 10_000:  # pragma: no cover - safety net
                    break
        states = next_states
        if not states:
            return 0.0
    return min(1.0, sum(states.values()))


def expected_time_with_subdivision(
    n_intervals: int,
    interval: float,
    *,
    m: int,
    kind: str,
    rate: float,
    store: float,
    compare: float,
    rollback: float = 0.0,
) -> float:
    """Task-level expected time ``n·R1(m)`` / ``n·R2(m)`` (paper §2).

    ``kind`` selects the SCP (``'scp'``) or CCP (``'ccp'``) renewal
    model.  This is ``R_SCP(n) = n·R1(m)`` / ``R_CCP(n) = n·R2(m)`` from
    the paper, used by the examples and the fig.-2 ablation bench.
    """
    from repro.core import renewal  # local import avoids cycle at module load

    if n_intervals < 1:
        raise ParameterError(f"n_intervals must be >= 1, got {n_intervals}")
    if kind == "scp":
        per = renewal.scp_interval_time_for_m(
            m, span=interval, rate=rate, store=store, compare=compare,
            rollback=rollback,
        )
    elif kind == "ccp":
        per = renewal.ccp_interval_time_for_m(
            m, span=interval, rate=rate, store=store, compare=compare,
            rollback=rollback,
        )
    else:
        raise ParameterError(f"kind must be 'scp' or 'ccp', got {kind!r}")
    return n_intervals * per
