"""Checkpoint-interval formulas and the DATE'03 ``interval()`` procedure.

These are the building blocks of the adaptive schemes (paper fig. 4,
taken from Zhang & Chakrabarty, DATE'03):

* :func:`poisson_interval` — ``I1(C, λ) = sqrt(2C/λ)``, the interval
  that minimises the *average* execution time under Poisson fault
  arrivals (Duda 1983).
* :func:`k_fault_interval` — ``I2(N, k, C) = sqrt(N·C/k)``, the interval
  that minimises the *worst-case* execution time when up to ``k`` faults
  must be tolerated (Lee, Shin & Min 1999).
* :func:`deadline_interval` — ``I3(N, D, C) = 2·N·C/(D + C − N)``, the
  interval that spends (half of) the remaining deadline slack on
  checkpoint overhead.
* :func:`poisson_threshold` / :func:`k_fault_threshold` — the remaining
  work thresholds ``Th_λ`` and ``Th`` that decide which interval rule is
  still feasible.
* :func:`checkpoint_interval` — the full decision procedure of paper
  fig. 4.

All quantities are in consistent *time units at the current speed*:
``work`` / ``deadline_left`` in time, ``cost`` as ``C = c/f``, ``rate``
as faults per time unit.
"""

from __future__ import annotations

import math

from repro.errors import InfeasibleError, ParameterError

__all__ = [
    "poisson_interval",
    "k_fault_interval",
    "deadline_interval",
    "poisson_threshold",
    "k_fault_threshold",
    "checkpoint_interval",
]


def _require_positive(name: str, value: float) -> None:
    if not value > 0:
        raise ParameterError(f"{name} must be > 0, got {value}")


def _require_non_negative(name: str, value: float) -> None:
    if value < 0:
        raise ParameterError(f"{name} must be >= 0, got {value}")


def poisson_interval(cost: float, rate: float) -> float:
    """``I1(C, λ) = sqrt(2C/λ)`` — Poisson-arrival optimal interval.

    Minimises the expected execution time when faults arrive as a
    Poisson process of the given rate and each checkpoint costs ``cost``
    time units (first-order approximation due to Duda [8]).
    """
    _require_positive("cost", cost)
    _require_positive("rate", rate)
    return math.sqrt(2.0 * cost / rate)


def k_fault_interval(work: float, faults: float, cost: float) -> float:
    """``I2(N, k, C) = sqrt(N·C/k)`` — k-fault-tolerant optimal interval.

    Minimises the worst-case execution time of ``work`` time units of
    computation when up to ``faults`` faults must be tolerated.
    ``faults`` may be fractional: the adaptive procedure passes the
    *expected* number of faults ``λ·Rt`` here (paper fig. 4 line 6).
    """
    _require_positive("work", work)
    _require_positive("faults", faults)
    _require_positive("cost", cost)
    return math.sqrt(work * cost / faults)


def deadline_interval(work: float, deadline_left: float, cost: float) -> float:
    """``I3(N, D, C) = 2·N·C/(D + C − N)`` — deadline-driven interval.

    Chooses the interval so that checkpoint overhead consumes half the
    remaining slack ``D + C − N``.  Raises :class:`InfeasibleError` when
    there is no slack at all (``work >= deadline_left + cost``): no
    finite interval can then meet the deadline.
    """
    _require_positive("work", work)
    _require_positive("cost", cost)
    slack = deadline_left + cost - work
    if slack <= 0:
        raise InfeasibleError(
            f"no deadline slack: work={work}, deadline_left={deadline_left}, "
            f"cost={cost}"
        )
    return 2.0 * work * cost / slack


def poisson_threshold(deadline_left: float, rate: float, cost: float) -> float:
    """``Th_λ(Rd, λ, C) = (Rd + C) / (1 + sqrt(λC/2))``.

    The largest remaining work for which Poisson-interval checkpointing
    (interval ``I1``, overhead factor ``1 + C/I1 = 1 + sqrt(λC/2)``)
    still fits in the remaining deadline.  Above this threshold the
    deadline-driven interval ``I3`` must be used instead.
    """
    _require_non_negative("deadline_left", deadline_left)
    _require_positive("rate", rate)
    _require_positive("cost", cost)
    return (deadline_left + cost) / (1.0 + math.sqrt(rate * cost / 2.0))


def k_fault_threshold(deadline_left: float, faults: float, cost: float) -> float:
    """``Th(Rd, Rf, C) = (sqrt(Rd + (Rf+1)C) − sqrt((Rf+1)C))²``.

    The largest remaining work for which the k-fault-tolerant scheme
    (interval ``I2``, worst case ``Rt + 2·sqrt(Rt·(Rf+1)·C)``) still
    meets the remaining deadline.  Expanding the square gives the
    paper's printed form
    ``Rd + 2RfC + 2C − 2·sqrt((RfC + C)(Rd + RfC + C))``.
    Returns 0 when the deadline is already exhausted.
    """
    _require_non_negative("deadline_left", deadline_left)
    _require_non_negative("faults", faults)
    _require_positive("cost", cost)
    budget = (faults + 1.0) * cost
    root = math.sqrt(deadline_left + budget) - math.sqrt(budget)
    if root <= 0:
        return 0.0
    return root * root


def checkpoint_interval(
    deadline_left: float,
    work: float,
    cost: float,
    faults_left: float,
    rate: float,
) -> float:
    """The adaptive interval procedure of paper fig. 4 (from DATE'03).

    Parameters
    ----------
    deadline_left:
        ``Rd`` — time remaining before the deadline.
    work:
        ``Rt`` — remaining fault-free execution time at current speed.
    cost:
        ``C = c/f`` — checkpoint duration at current speed.
    faults_left:
        ``Rf`` — remaining fault-tolerance budget (may reach 0 or go
        negative after many faults; the k-fault branch is then skipped).
    rate:
        ``λ`` — fault arrival rate.

    Returns the checkpoint interval in time units, clamped to
    ``(0, work]`` (an interval longer than the remaining work simply
    means "checkpoint once, at the end").

    Degenerate cases are handled explicitly rather than left to raise:

    * ``rate <= 0`` (no faults expected): one checkpoint at the end.
    * no deadline slack for ``I3`` where it is selected: the interval
      collapses to the remaining work — the run is doomed and the
      executor's deadline check will terminate it.
    """
    _require_positive("work", work)
    _require_positive("cost", cost)
    if rate <= 0:
        return work
    _require_non_negative("deadline_left", deadline_left)

    # The helper formulas are inlined (operation for operation — this
    # runs once per fault in every adaptive Monte-Carlo rep); the
    # module-level functions stay the documented reference and
    # tests/test_intervals.py pins exact agreement.
    expected_faults = rate * work

    if expected_faults <= faults_left:
        # The k-fault-tolerant requirement is at least as stringent as
        # the Poisson-arrival criterion (fig. 4 lines 2-7).
        # Th_λ = (Rd + C) / (1 + sqrt(λC/2))
        if work > (deadline_left + cost) / (1.0 + math.sqrt(rate * cost / 2.0)):
            interval = _deadline_or_work(work, deadline_left, cost)
        else:
            # Th = (sqrt(Rd + (Rf+1)C) − sqrt((Rf+1)C))², 0 at no slack
            budget = (faults_left + 1.0) * cost
            root = math.sqrt(deadline_left + budget) - math.sqrt(budget)
            threshold = root * root if root > 0 else 0.0
            if work > threshold:
                # I2 with the expected fault count λ·Rt (fig. 4 line 6)
                interval = math.sqrt(work * cost / expected_faults)
            elif faults_left > 0:
                interval = math.sqrt(work * cost / faults_left)
            else:
                interval = k_fault_interval(work, faults_left, cost)
    else:
        # Expected faults exceed the budget (fig. 4 lines 8-10).
        if work > (deadline_left + cost) / (1.0 + math.sqrt(rate * cost / 2.0)):
            interval = _deadline_or_work(work, deadline_left, cost)
        else:
            interval = math.sqrt(2.0 * cost / rate)

    return min(max(interval, _MIN_INTERVAL), work)


#: Lower clamp for returned intervals; prevents pathological zero-length
#: intervals when the deadline slack collapses.
_MIN_INTERVAL = 1e-9


def _deadline_or_work(work: float, deadline_left: float, cost: float) -> float:
    """``I3`` with a graceful fallback when there is no slack left."""
    try:
        return deadline_interval(work, deadline_left, cost)
    except InfeasibleError:
        return work
