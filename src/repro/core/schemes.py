"""The five checkpointing schemes evaluated by the paper.

===========================  ====================================================
Scheme (paper name)          Class
===========================  ====================================================
``Poisson``                  :class:`PoissonArrivalPolicy` — static interval
                             ``I1 = sqrt(2C/λ)`` at a fixed speed.
``k-f-t``                    :class:`KFaultTolerantPolicy` — static interval
                             ``I2 = sqrt(N·C/k)`` at a fixed speed.
``A_D`` (ADT_DVS, DATE'03)   :class:`AdaptiveDVSPolicy` — CSCPs only, interval
                             from ``interval()``, two-speed DVS via ``t_est``.
``A_D_S`` (paper fig. 6)     :class:`AdaptiveSCPPolicy` — ``A_D`` plus ``m − 1``
                             store-checkpoints per interval via ``num_SCP``.
``A_D_C`` (paper fig. 7)     :class:`AdaptiveCCPPolicy` — ``A_D`` plus ``m − 1``
                             compare-checkpoints per interval via ``num_CCP``.
===========================  ====================================================

A policy owns no simulation state; it reads the executor's
:class:`~repro.sim.state.ExecutionState` and answers "what is the next
CSCP interval, how is it subdivided, and at what speed?".  Adaptive
policies replan at task start and after every detected fault — exactly
the recompute points of the paper's pseudocode (figs. 6/7 lines 2-4 and
14-17) — never in between.
"""

from __future__ import annotations

import abc
import threading
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core import optimizer
from repro.core.checkpoints import CheckpointKind
from repro.core.dvs import SpeedLadder
from repro.core.intervals import (
    checkpoint_interval,
    k_fault_interval,
    poisson_interval,
)
from repro.errors import ParameterError
from repro.sim.state import ExecutionState

__all__ = [
    "Plan",
    "CheckpointPolicy",
    "PoissonArrivalPolicy",
    "KFaultTolerantPolicy",
    "AdaptiveDVSPolicy",
    "AdaptiveSCPPolicy",
    "AdaptiveCCPPolicy",
    "AdaptiveConfig",
    "ReplanTable",
    "replan_table_for",
]

#: Deadline floor used when replanning a run that has already overshot
#: its deadline (the executor will terminate it at the next boundary).
_EPS_DEADLINE = 1e-9


@dataclass(frozen=True)
class Plan:
    """One CSCP interval: length (time units at current speed), its
    subdivision count and the kind of the interior sub-checkpoints."""

    interval_time: float
    m: int
    sub_kind: CheckpointKind

    def __post_init__(self) -> None:
        if self.interval_time <= 0:
            raise ParameterError(
                f"interval_time must be > 0, got {self.interval_time}"
            )
        if self.m < 1:
            raise ParameterError(f"m must be >= 1, got {self.m}")


class CheckpointPolicy(abc.ABC):
    """Strategy interface consumed by :func:`repro.sim.executor.simulate_run`."""

    #: Human-readable identifier used in reports.
    name: str = "policy"

    #: Declares that :meth:`plan` only changes in :meth:`start` /
    #: :meth:`on_fault` (true for every in-repo scheme: plans are
    #: cached between replans).  The executor hot loop then asks for
    #: the plan once per replan boundary instead of once per interval —
    #: identical execution, fewer calls.  Policies whose plan depends
    #: on mid-run state must leave this ``False``.
    plan_stable: bool = False

    @abc.abstractmethod
    def start(self, state: ExecutionState) -> None:
        """Initialise speed and plan at task start."""

    @abc.abstractmethod
    def plan(self, state: ExecutionState) -> Plan:
        """Current CSCP interval plan (cached between replans)."""

    @abc.abstractmethod
    def on_fault(self, state: ExecutionState) -> None:
        """React to a detected fault (``Rf`` already decremented)."""


class _StaticPolicy(CheckpointPolicy):
    """Shared behaviour of the two non-adaptive baselines."""

    plan_stable = True  # the plan is fixed at start and never changes

    def __init__(self, frequency: float = 1.0) -> None:
        if frequency <= 0:
            raise ParameterError(f"frequency must be > 0, got {frequency}")
        self.frequency = frequency
        self._plan: Plan | None = None

    def start(self, state: ExecutionState) -> None:
        state.frequency = self.frequency
        self._plan = Plan(
            interval_time=self._interval(state),
            m=1,
            sub_kind=CheckpointKind.CSCP,
        )

    def plan(self, state: ExecutionState) -> Plan:
        assert self._plan is not None, "start() must run before plan()"
        return self._plan

    def on_fault(self, state: ExecutionState) -> None:
        """Static schemes never replan."""

    @abc.abstractmethod
    def _interval(self, state: ExecutionState) -> float:
        """Constant checkpoint interval in time units at ``frequency``."""


class PoissonArrivalPolicy(_StaticPolicy):
    """Constant interval ``I1(C, λ) = sqrt(2C/λ)`` (Duda [8]).

    Minimises the *average* execution time under Poisson faults; ignores
    the deadline entirely, which is exactly why the paper shows it
    failing at high utilisation.
    """

    name = "Poisson"

    def _interval(self, state: ExecutionState) -> float:
        task = state.task
        cost = task.costs.checkpoint_cycles / self.frequency
        if task.fault_rate <= 0:
            return task.cycles / self.frequency
        return min(
            poisson_interval(cost, task.fault_rate),
            task.cycles / self.frequency,
        )


class KFaultTolerantPolicy(_StaticPolicy):
    """Constant interval ``I2(N, k, C) = sqrt(N·C/k)`` (Lee et al. [9]).

    Minimises the *worst-case* execution time under at most ``k``
    faults.
    """

    name = "k-f-t"

    def _interval(self, state: ExecutionState) -> float:
        task = state.task
        work = task.cycles / self.frequency
        cost = task.costs.checkpoint_cycles / self.frequency
        if task.fault_budget <= 0:
            return work
        return min(k_fault_interval(work, task.fault_budget, cost), work)


@dataclass(frozen=True)
class AdaptiveConfig:
    """Shared knobs of the adaptive schemes.

    Parameters
    ----------
    ladder:
        Available processor speeds (paper: ``f1 = 1``, ``f2 = 2``).
    analysis_rate_factor:
        Multiplier applied to the task fault rate inside the *renewal
        models* that choose ``m``.  The paper's equations carry the DMR
        pair-divergence factor 2 while its simulation injects a single
        stream at ``λ``; the default 1.0 keeps model and simulator
        consistent (see DESIGN.md §5), 2.0 reproduces the printed
        equations verbatim.  The ablation bench quantifies the gap.
    max_m:
        Safety clamp on the subdivision count.
    """

    ladder: SpeedLadder = field(default_factory=SpeedLadder.paper_two_level)
    analysis_rate_factor: float = 1.0
    max_m: int = optimizer.DEFAULT_MAX_SUBDIVISIONS

    def __post_init__(self) -> None:
        if self.analysis_rate_factor <= 0:
            raise ParameterError(
                f"analysis_rate_factor must be > 0, got {self.analysis_rate_factor}"
            )
        if self.max_m < 1:
            raise ParameterError(f"max_m must be >= 1, got {self.max_m}")


#: Memo of the adaptive schemes' initial (frequency, Plan) keyed by
#: (task, config, scheme class); bounded by periodic clearing.
_START_MEMO: dict = {}


class _AdaptiveBase(CheckpointPolicy):
    """Common machinery of ``A_D``, ``A_D_S`` and ``A_D_C``.

    Implements paper figs. 6/7: speed selection by ``t_est`` at start
    and after every fault; CSCP interval from the DATE'03 ``interval()``
    procedure; subdivision delegated to the concrete subclass.
    """

    plan_stable = True  # replans happen only in start()/on_fault()

    def __init__(self, config: AdaptiveConfig | None = None) -> None:
        self.config = config or AdaptiveConfig()
        self._plan: Plan | None = None
        # Per-fault replan caches: the ladder and sub-checkpoint kind
        # are fixed per policy, the checkpoint cost and renewal-model
        # arguments per (task, frequency) — and a policy instance sees
        # exactly one task (fresh policy per run).
        self._ladder = self.config.ladder
        self._kind = self._sub_kind()
        self._checkpoint_cycles: float | None = None
        self._analysis_by_frequency: dict = {}

    def start(self, state: ExecutionState) -> None:
        # Every rep of a Monte-Carlo cell starts from the same fresh
        # state, so the initial (speed, plan) is a pure function of
        # (task, config, scheme) — memoised across policy instances.
        # `Plan` is frozen, so sharing one instance is safe.  Two
        # guards keep the memo sound: only classes whose constructor is
        # exactly _AdaptiveBase's may use it (a subclass with extra
        # constructor state, e.g. the fixed-m ablation policy, is not a
        # pure function of the key), and the state must actually *be*
        # fresh — start() is public API and may legally be handed a
        # tampered state, which must bypass the cache in both
        # directions.
        task = state.task
        fresh = (
            state.clock == 0.0
            and state.remaining_cycles == task.cycles
            and state.faults_left == float(task.fault_budget)
            and state.frequency == 1.0
        )
        if not fresh or type(self).__init__ is not _AdaptiveBase.__init__:
            key = None
            memo = None
        else:
            try:
                key = (task, self.config, type(self))
                memo = _START_MEMO.get(key)
            except TypeError:  # unhashable custom config: just compute
                key = None
                memo = None
        if memo is not None:
            state.frequency, self._plan = memo
            return
        self._select_speed(state)
        self._replan(state)
        if key is not None:
            if len(_START_MEMO) > 1024:
                _START_MEMO.clear()
            _START_MEMO[key] = (state.frequency, self._plan)

    def plan(self, state: ExecutionState) -> Plan:
        assert self._plan is not None, "start() must run before plan()"
        return self._plan

    def on_fault(self, state: ExecutionState) -> None:
        self._select_speed(state)
        self._replan(state)

    def _select_speed(self, state: ExecutionState) -> None:
        task = state.task
        checkpoint_cycles = self._checkpoint_cycles
        if checkpoint_cycles is None:
            checkpoint_cycles = self._checkpoint_cycles = (
                task.costs.checkpoint_cycles
            )
        state.frequency = self._ladder.select_speed(
            state.remaining_cycles,
            state.deadline_left,
            rate=task.fault_rate,
            checkpoint_cycles=checkpoint_cycles,
        )

    def _replan(self, state: ExecutionState) -> None:
        task = state.task
        frequency = state.frequency
        checkpoint_cycles = self._checkpoint_cycles
        if checkpoint_cycles is None:
            checkpoint_cycles = self._checkpoint_cycles = (
                task.costs.checkpoint_cycles
            )
        cost = checkpoint_cycles / frequency
        work = state.remaining_cycles / frequency
        deadline_left = max(state.deadline_left, _EPS_DEADLINE)
        interval = checkpoint_interval(
            deadline_left, work, cost, state.faults_left, task.fault_rate
        )
        m = self._subdivide(state, interval)
        # checkpoint_interval clamps into (0, work] and _subdivide
        # returns m >= 1, so Plan's validation is skipped (this runs
        # once per detected fault in every adaptive Monte-Carlo rep).
        plan = Plan.__new__(Plan)
        object.__setattr__(plan, "interval_time", interval)
        object.__setattr__(plan, "m", m)
        object.__setattr__(plan, "sub_kind", self._kind)
        self._plan = plan

    @abc.abstractmethod
    def _subdivide(self, state: ExecutionState, interval: float) -> int:
        """Number of sub-intervals for a CSCP interval of this length."""

    @abc.abstractmethod
    def _sub_kind(self) -> CheckpointKind:
        """Kind of the interior sub-checkpoints."""

    def _analysis_args(self, state: ExecutionState) -> dict:
        """Renewal-model arguments in time units at the current speed.

        Cached per frequency: a policy instance serves one run of one
        task, so everything here is constant per speed level.
        """
        frequency = state.frequency
        args = self._analysis_by_frequency.get(frequency)
        if args is None:
            task = state.task
            costs = task.costs
            args = {
                "rate": task.fault_rate * self.config.analysis_rate_factor,
                "store": costs.store_cycles / frequency,
                "compare": costs.compare_cycles / frequency,
                "rollback": costs.rollback_cycles / frequency,
                "max_m": self.config.max_m,
            }
            self._analysis_by_frequency[frequency] = args
        return args


class ReplanTable:
    """Quantised memo of an adaptive policy's per-fault replan decision.

    The fast kernel's rung 2 (:mod:`repro.sim.kernel`): instead of
    re-running ``_select_speed`` + ``_replan`` (``checkpoint_interval``
    plus the ``num_SCP``/``num_CCP`` renewal-model optimisation —
    ~30-100 µs for the CCP Brent search) at every detected fault, the
    (remaining_cycles, deadline_left, faults_left) query is quantised
    onto a ``resolution × resolution`` grid and the decision is
    evaluated **at the bucket centre**, lazily, once per bucket.

    Two properties make the memo safe to share:

    * values are a pure function of the bucket, never of the query that
      first filled it — so the fill *order* cannot change results, and
      a table shared across blocks/workers stays deterministic;
    * queries outside the grid (overshot deadline, out-of-range work)
      bypass the memo and evaluate the policy at the exact query point
      — the exactness fallback the design calls for.

    Thread-safe: a process-shared table (see :func:`replan_table_for`)
    can be hit from concurrent scheduler/service threads, and
    :meth:`_eval` works by mutating one reusable
    :class:`ExecutionState` (and the wrapped policy's own caches) — so
    evaluations are serialised under a per-table lock.  Memo reads stay
    lock-free: a racing double-fill computes the same pure-function row
    twice, which is wasted work, never a wrong answer.

    ``resolution=0`` disables quantisation entirely: every lookup is an
    exact evaluation (the conformance-test mode — the kernel then
    replans with arithmetic identical to the exact executor's).

    This is a **fast-mode** component: the quantised decision is
    statistically equivalent, not bit-identical, to the exact replan.
    The exact executor never touches it.
    """

    __slots__ = (
        "_policy",
        "_task",
        "_resolution",
        "_state",
        "_rc_step",
        "_dl_step",
        "_deadline",
        "_cycles",
        "_memo",
        "_eval_lock",
        "__weakref__",
    )

    #: Default grid resolution per axis (empirically: fine enough that
    #: the statistical-equivalence suite holds with wide margin, coarse
    #: enough that a cell's working set is a few thousand buckets).
    DEFAULT_RESOLUTION = 512

    def __init__(
        self,
        policy: CheckpointPolicy,
        task,
        *,
        resolution: int = DEFAULT_RESOLUTION,
    ) -> None:
        if resolution < 0:
            raise ParameterError(
                f"resolution must be >= 0, got {resolution}"
            )
        self._policy = policy
        self._task = task
        self._resolution = resolution
        self._state = ExecutionState.fresh(task)
        self._deadline = task.deadline
        self._cycles = task.cycles
        if resolution:
            self._rc_step = task.cycles / resolution
            self._dl_step = task.deadline / resolution
        else:
            self._rc_step = 0.0
            self._dl_step = 0.0
        self._memo: dict = {}
        self._eval_lock = threading.Lock()

    @property
    def resolution(self) -> int:
        return self._resolution

    @property
    def entries(self) -> int:
        """Memoised buckets so far (diagnostics)."""
        return len(self._memo)

    @property
    def rc_step(self) -> float:
        """Remaining-cycles bucket width (0.0 when resolution is 0)."""
        return self._rc_step

    @property
    def dl_step(self) -> float:
        """Deadline-left bucket width (0.0 when resolution is 0)."""
        return self._dl_step

    def lookup(
        self, remaining_cycles: float, deadline_left: float, faults_left: float
    ):
        """``(frequency, interval_time, m)`` after a fault at this state."""
        if (
            self._resolution
            and 0.0 < deadline_left <= self._deadline
            and 0.0 < remaining_cycles <= self._cycles
        ):
            i = int(remaining_cycles / self._rc_step)
            j = int(deadline_left / self._dl_step)
            key = (i, j, faults_left)
            row = self._memo.get(key)
            if row is None:
                row = self._eval(
                    (i + 0.5) * self._rc_step,
                    (j + 0.5) * self._dl_step,
                    faults_left,
                )
                self._memo[key] = row
            return row
        # Off-table: evaluate at the exact query point.
        return self._eval(remaining_cycles, deadline_left, faults_left)

    def lookup_many(self, remaining_cycles, deadline_left, faults_left):
        """Vectorised :meth:`lookup` over equal-length arrays.

        Returns a list of ``(frequency, interval_time, m)`` rows, one
        per query — identical to calling :meth:`lookup` elementwise,
        but with the bucketing done in NumPy and only cache misses
        paying for a policy evaluation.  The fast kernel's per-fault
        replan path.
        """
        rc = np.asarray(remaining_cycles, dtype=np.float64)
        dl = np.asarray(deadline_left, dtype=np.float64)
        n = rc.shape[0]
        out = [None] * n
        if self._resolution:
            on = (
                (dl > 0.0)
                & (dl <= self._deadline)
                & (rc > 0.0)
                & (rc <= self._cycles)
            )
            i_all = (np.where(on, rc, 0.0) / self._rc_step).astype(np.int64)
            j_all = (np.where(on, dl, 0.0) / self._dl_step).astype(np.int64)
            on_l = on.tolist()
            i_l = i_all.tolist()
            j_l = j_all.tolist()
        else:
            on_l = [False] * n
            i_l = j_l = None
        rc_l = rc.tolist()
        dl_l = dl.tolist()
        fl_l = np.asarray(faults_left, dtype=np.float64).tolist()
        memo = self._memo
        get = memo.get
        eval_ = self._eval
        rc_step = self._rc_step
        dl_step = self._dl_step
        for p in range(n):
            if on_l[p]:
                key = (i_l[p], j_l[p], fl_l[p])
                row = get(key)
                if row is None:
                    row = eval_(
                        (i_l[p] + 0.5) * rc_step,
                        (j_l[p] + 0.5) * dl_step,
                        fl_l[p],
                    )
                    memo[key] = row
            else:
                row = eval_(rc_l[p], dl_l[p], fl_l[p])
            out[p] = row
        return out

    def _eval(self, remaining_cycles: float, deadline_left: float,
              faults_left: float):
        with self._eval_lock:
            state = self._state
            state.remaining_cycles = remaining_cycles
            state.clock = self._deadline - deadline_left
            state.faults_left = faults_left
            state.frequency = 1.0  # overwritten by _select_speed
            policy = self._policy
            policy.on_fault(state)
            plan = policy.plan(state)
            return (state.frequency, plan.interval_time, plan.m)


#: Process-level shared replan tables, keyed by
#: (scheme class, config, task, resolution); bounded by clearing.
#: Shared only for classes whose constructor is exactly
#: ``_AdaptiveBase.__init__`` (same soundness guard as _START_MEMO):
#: a subclass with extra constructor state is not a pure function of
#: the key.
_REPLAN_TABLES: dict = {}

#: Guards the registry's get/clear/insert sequence — concurrent
#: scheduler threads must converge on ONE table per key, or the
#: cross-block sharing the registry exists for silently degrades.
_REPLAN_TABLES_LOCK = threading.Lock()


def replan_table_for(
    policy: CheckpointPolicy, task, *, resolution: int = ReplanTable.DEFAULT_RESOLUTION
) -> Optional[ReplanTable]:
    """A :class:`ReplanTable` for ``policy``, shared when that is sound.

    Returns ``None`` for policies that never replan mid-run (the static
    baselines — their plan is fixed at start) and for policy types the
    table cannot model (anything that is not an :class:`_AdaptiveBase`).
    Sharable adaptive policies (constructor is exactly the base's) get
    the process-level memo — amortising bucket evaluations across every
    block of every cell with the same (scheme, config, task); others
    get a private table wrapped around the given instance.
    """
    if isinstance(policy, _StaticPolicy):
        return None
    if not isinstance(policy, _AdaptiveBase):
        return None
    if type(policy).__init__ is _AdaptiveBase.__init__:
        key = (type(policy), policy.config, task, resolution)
        try:
            hash(key)
        except TypeError:  # unhashable custom config
            key = None
        if key is not None:
            with _REPLAN_TABLES_LOCK:
                table = _REPLAN_TABLES.get(key)
                if table is not None:
                    return table
                table = ReplanTable(
                    type(policy)(policy.config), task, resolution=resolution
                )
                if len(_REPLAN_TABLES) > 64:
                    _REPLAN_TABLES.clear()
                _REPLAN_TABLES[key] = table
                return table
        return ReplanTable(
            type(policy)(policy.config), task, resolution=resolution
        )
    return ReplanTable(policy, task, resolution=resolution)


class AdaptiveDVSPolicy(_AdaptiveBase):
    """``A_D`` — the ADT_DVS baseline of Zhang & Chakrabarty (DATE'03).

    Plain CSCPs (no subdivision): faults are detected at the closing
    comparison and roll back a whole interval.
    """

    name = "A_D"

    def _subdivide(self, state: ExecutionState, interval: float) -> int:
        return 1

    def _sub_kind(self) -> CheckpointKind:
        return CheckpointKind.CSCP


class AdaptiveSCPPolicy(_AdaptiveBase):
    """``A_D_S`` — adaptive checkpointing with additional SCPs (fig. 6).

    Each CSCP interval is split into ``m`` parts by store-checkpoints;
    ``m`` minimises the renewal model ``R1`` (procedure ``num_SCP``).
    On a fault the pair rolls back only to the last clean store.
    """

    name = "A_D_S"

    def _subdivide(self, state: ExecutionState, interval: float) -> int:
        return optimizer.num_scp(interval, **self._analysis_args(state)).m

    def _sub_kind(self) -> CheckpointKind:
        return CheckpointKind.SCP


class AdaptiveCCPPolicy(_AdaptiveBase):
    """``A_D_C`` — adaptive checkpointing with additional CCPs (fig. 7).

    Each CSCP interval is split into ``m`` parts by compare-checkpoints;
    ``m`` minimises the renewal model ``R2`` (procedure ``num_CCP``).
    Faults are detected at the next comparison (early) but rollback goes
    to the interval's opening CSCP.
    """

    name = "A_D_C"

    def _subdivide(self, state: ExecutionState, interval: float) -> int:
        return optimizer.num_ccp(interval, **self._analysis_args(state)).m

    def _sub_kind(self) -> CheckpointKind:
        return CheckpointKind.CCP
