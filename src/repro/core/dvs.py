"""Dynamic voltage scaling: speed levels and the ``t_est`` estimator.

The paper models a processor with two speeds ``f1`` (the minimum,
normalised to 1) and ``f2 = 2·f1``, switching in negligible time.  The
speed decision compares the estimated completion time in the presence
of faults and checkpointing,

``t_est(Rc, f) = Rc·(1 + sqrt(λ·c/f)) / ( f·(1 − sqrt(λ·c/f)) )``

(from DATE'03: interval set to ``sqrt(C/λ)`` to tolerate the ``λ·t_est``
expected faults, overhead and recovery each contributing a
``sqrt(λ·c/f)`` fraction), with the remaining deadline ``Rd``: run at
``f1`` if ``t_est(Rc, f1) ≤ Rd``, otherwise at ``f2``.

:class:`SpeedLadder` generalises this to any number of levels (used by
:mod:`repro.extensions.multi_speed`); the paper's two-level ladder is
:func:`SpeedLadder.paper_two_level`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import ParameterError

__all__ = ["estimated_completion_time", "SpeedLadder"]


def estimated_completion_time(
    work_cycles: float,
    frequency: float,
    *,
    rate: float,
    checkpoint_cycles: float,
) -> float:
    """``t_est`` — estimated completion time with faults and checkpoints.

    Parameters
    ----------
    work_cycles:
        ``Rc`` — remaining task cycles.
    frequency:
        ``f`` — candidate processor speed (cycles per time unit).
    rate:
        ``λ`` — fault arrival rate (per time unit).
    checkpoint_cycles:
        ``c`` — cycles consumed by one checkpoint.

    Returns ``inf`` when ``λ·c/f ≥ 1``: the overhead-plus-recovery
    fraction then consumes the whole processor and no finite completion
    estimate exists at this speed.
    """
    if work_cycles < 0:
        raise ParameterError(f"work_cycles must be >= 0, got {work_cycles}")
    if frequency <= 0:
        raise ParameterError(f"frequency must be > 0, got {frequency}")
    if rate < 0:
        raise ParameterError(f"rate must be >= 0, got {rate}")
    if checkpoint_cycles < 0:
        raise ParameterError(
            f"checkpoint_cycles must be >= 0, got {checkpoint_cycles}"
        )
    if work_cycles == 0:
        return 0.0
    loss = math.sqrt(rate * checkpoint_cycles / frequency)
    if loss >= 1.0:
        return math.inf
    return work_cycles * (1.0 + loss) / (frequency * (1.0 - loss))


@dataclass(frozen=True)
class SpeedLadder:
    """An ordered set of processor speeds with their supply voltages.

    ``frequencies`` must be strictly increasing and start at the
    normalised minimum speed.  ``voltages`` maps 1:1 onto frequencies;
    see :mod:`repro.sim.energy` for how they enter the energy account.
    """

    frequencies: Tuple[float, ...]
    voltages: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.frequencies) < 1:
            raise ParameterError("SpeedLadder needs at least one frequency")
        if len(self.frequencies) != len(self.voltages):
            raise ParameterError("frequencies and voltages must align")
        if any(f <= 0 for f in self.frequencies):
            raise ParameterError("frequencies must be > 0")
        if any(v <= 0 for v in self.voltages):
            raise ParameterError("voltages must be > 0")
        if any(
            b <= a for a, b in zip(self.frequencies, self.frequencies[1:])
        ):
            raise ParameterError("frequencies must be strictly increasing")

    @classmethod
    def from_frequencies(
        cls, frequencies: Sequence[float], voltage_exponent: float = 0.5
    ) -> "SpeedLadder":
        """Build a ladder with ``V(f) = sqrt(2f)``-style voltage scaling.

        The default ``V(f) = sqrt(2)·f**0.5`` reproduces the paper's
        published energy magnitudes (see DESIGN.md §2 "Energy model");
        ``voltage_exponent=1.0`` gives the textbook linear ``V ∝ f``.
        """
        freqs = tuple(float(f) for f in frequencies)
        volts = tuple(math.sqrt(2.0) * f**voltage_exponent for f in freqs)
        return cls(frequencies=freqs, voltages=volts)

    @classmethod
    def paper_two_level(cls) -> "SpeedLadder":
        """The paper's ladder: ``f1 = 1`` and ``f2 = 2`` with calibrated
        voltages ``V = sqrt(2f)`` (energy/cycle of 2 and 4)."""
        return cls.from_frequencies((1.0, 2.0))

    @property
    def minimum(self) -> float:
        """``f1`` — the slowest (most energy-efficient) speed."""
        return self.frequencies[0]

    @property
    def maximum(self) -> float:
        """The fastest available speed."""
        return self.frequencies[-1]

    def voltage_of(self, frequency: float) -> float:
        """Supply voltage for an exact ladder frequency."""
        for f, v in zip(self.frequencies, self.voltages):
            if f == frequency:
                return v
        raise ParameterError(f"{frequency} is not a ladder frequency")

    def select_speed(
        self,
        work_cycles: float,
        deadline_left: float,
        *,
        rate: float,
        checkpoint_cycles: float,
    ) -> float:
        """Pick the slowest speed whose ``t_est`` meets the deadline.

        For the paper's two-level ladder this is exactly figs. 6/7
        line 2/15: ``f1`` if ``t_est(Rc, f1) ≤ Rd`` else ``f2``.  With
        more levels the generalisation "slowest feasible, else fastest"
        applies; when no speed is feasible the fastest is returned (the
        run is then expected to miss, which the executor detects).
        """
        if work_cycles < 0:
            raise ParameterError(f"work_cycles must be >= 0, got {work_cycles}")
        # Per-level factors depend only on (ladder, rate, c): memoised so
        # the per-fault speed decision is two float ops per level.  The
        # factored form reproduces estimated_completion_time's exact
        # operation order: work·(1+loss) / (f·(1−loss)).
        for frequency, numerator, denominator in _ladder_factors(
            self, rate, checkpoint_cycles
        ):
            if work_cycles == 0:
                t_est = 0.0
            elif numerator is None:  # loss >= 1: no finite estimate
                t_est = math.inf
            else:
                t_est = work_cycles * numerator / denominator
            if t_est <= deadline_left:
                return frequency
        return self.maximum


#: Memo of per-level ``t_est`` factors keyed by (frequencies, rate, c);
#: bounded by periodic clearing (entries are tiny and keys few — one
#: per distinct task parameterisation).
_SPEED_FACTOR_MEMO: dict = {}


def _ladder_factors(
    ladder: "SpeedLadder", rate: float, checkpoint_cycles: float
) -> list:
    key = (ladder.frequencies, rate, checkpoint_cycles)
    entry = _SPEED_FACTOR_MEMO.get(key)
    if entry is None:
        if rate < 0:
            raise ParameterError(f"rate must be >= 0, got {rate}")
        if checkpoint_cycles < 0:
            raise ParameterError(
                f"checkpoint_cycles must be >= 0, got {checkpoint_cycles}"
            )
        entry = []
        for frequency in ladder.frequencies:
            loss = math.sqrt(rate * checkpoint_cycles / frequency)
            if loss >= 1.0:
                entry.append((frequency, None, None))
            else:
                entry.append(
                    (frequency, 1.0 + loss, frequency * (1.0 - loss))
                )
        if len(_SPEED_FACTOR_MEMO) > 1024:
            _SPEED_FACTOR_MEMO.clear()
        _SPEED_FACTOR_MEMO[key] = entry
    return entry
