"""Core algorithms of the paper: interval formulas, renewal models,
subdivision optimisers, DVS speed selection and the five checkpointing
schemes."""

from repro.core import (
    analysis,
    checkpoints,
    dvs,
    intervals,
    optimizer,
    renewal,
    schemes,
)

__all__ = [
    "analysis",
    "checkpoints",
    "dvs",
    "intervals",
    "optimizer",
    "renewal",
    "schemes",
]
