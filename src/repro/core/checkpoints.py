"""Checkpoint kinds and the checkpoint cost model.

The paper distinguishes three checkpoint operations for a double modular
redundancy (DMR) pair:

* **SCP** (store checkpoint): both processors store their state without
  comparing — cost ``t_s`` cycles.
* **CCP** (compare checkpoint): the two states are compared without
  being stored — cost ``t_cp`` cycles.
* **CSCP** (compare-and-store checkpoint): both operations together —
  cost ``c = t_s + t_cp`` cycles.

Costs are expressed in *CPU cycles at the minimum speed* ``f1 = 1`` (the
paper's normalisation).  At frequency ``f`` an operation of ``x`` cycles
takes ``x / f`` time units; :meth:`CostModel.at_frequency` performs that
conversion.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ParameterError

__all__ = ["CheckpointKind", "CostModel", "TimeCosts"]


class CheckpointKind(enum.Enum):
    """The three checkpoint operations defined by the paper."""

    SCP = "scp"
    CCP = "ccp"
    CSCP = "cscp"

    @property
    def stores(self) -> bool:
        """Whether this checkpoint writes the processor states."""
        return self in (CheckpointKind.SCP, CheckpointKind.CSCP)

    @property
    def compares(self) -> bool:
        """Whether this checkpoint compares the two processor states."""
        return self in (CheckpointKind.CCP, CheckpointKind.CSCP)


@dataclass(frozen=True)
class CostModel:
    """Checkpoint operation costs in cycles (paper notation).

    Parameters
    ----------
    store_cycles:
        ``t_s`` — time to store the states of the processors.
    compare_cycles:
        ``t_cp`` — time to compare the processors' states.
    rollback_cycles:
        ``t_r`` — time to roll the processors back to a consistent
        state.  The paper's evaluation uses ``t_r = 0``.
    """

    store_cycles: float = 2.0
    compare_cycles: float = 20.0
    rollback_cycles: float = 0.0

    def __post_init__(self) -> None:
        if self.store_cycles < 0:
            raise ParameterError(f"store_cycles must be >= 0, got {self.store_cycles}")
        if self.compare_cycles < 0:
            raise ParameterError(
                f"compare_cycles must be >= 0, got {self.compare_cycles}"
            )
        if self.rollback_cycles < 0:
            raise ParameterError(
                f"rollback_cycles must be >= 0, got {self.rollback_cycles}"
            )
        if self.store_cycles == 0 and self.compare_cycles == 0:
            raise ParameterError("store_cycles and compare_cycles cannot both be 0")

    @property
    def checkpoint_cycles(self) -> float:
        """``c`` — cycles of a full checkpoint (CSCP): ``t_s + t_cp``."""
        return self.store_cycles + self.compare_cycles

    def cycles_of(self, kind: CheckpointKind) -> float:
        """Cycle cost of one checkpoint operation of the given kind."""
        if kind is CheckpointKind.SCP:
            return self.store_cycles
        if kind is CheckpointKind.CCP:
            return self.compare_cycles
        return self.checkpoint_cycles

    def at_frequency(self, frequency: float) -> "TimeCosts":
        """Convert cycle costs to time units at the given frequency."""
        if frequency <= 0:
            raise ParameterError(f"frequency must be > 0, got {frequency}")
        return TimeCosts(
            store=self.store_cycles / frequency,
            compare=self.compare_cycles / frequency,
            rollback=self.rollback_cycles / frequency,
        )

    @classmethod
    def scp_favourable(cls) -> "CostModel":
        """Paper §4.1 parameters: cheap stores (``t_s=2, t_cp=20``)."""
        return cls(store_cycles=2.0, compare_cycles=20.0, rollback_cycles=0.0)

    @classmethod
    def ccp_favourable(cls) -> "CostModel":
        """Paper §4.2 parameters: cheap compares (``t_s=20, t_cp=2``)."""
        return cls(store_cycles=20.0, compare_cycles=2.0, rollback_cycles=0.0)


@dataclass(frozen=True)
class TimeCosts:
    """Checkpoint operation costs converted to time units at a speed."""

    store: float
    compare: float
    rollback: float

    @property
    def checkpoint(self) -> float:
        """``C = c/f`` — duration of a full CSCP at this speed."""
        return self.store + self.compare
