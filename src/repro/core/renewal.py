"""Renewal-equation models for the expected time of one CSCP interval.

One CSCP interval spans ``T`` time units of useful work and is closed by
a compare-and-store checkpoint.  It may be subdivided by ``m − 1``
additional checkpoints into sub-intervals of length ``T/m``:

* **SCP scheme** (paper §2.1, eq. 1): the extra checkpoints *store*
  state; faults are detected only at the closing CSCP comparison, and
  the pair rolls back to the last store written before the first fault.
* **CCP scheme** (paper §2.2, eq. 2): the extra checkpoints *compare*
  states; faults are detected early (at the next comparison) but the
  only restorable state is the opening CSCP, so the whole interval is
  re-executed.

``rate`` is the state-divergence rate seen by the comparison logic.  The
paper's analysis writes ``2λ`` for a DMR pair with per-processor fault
rate ``λ``; its simulation injects a single system-level stream of rate
``λ``.  Callers choose (see ``AdaptiveSchemeConfig.analysis_rate_factor``).

All costs and lengths are in consistent time units at the current speed.
"""

from __future__ import annotations

import math

from repro.errors import ParameterError

__all__ = [
    "scp_interval_time",
    "scp_interval_time_for_m",
    "ccp_interval_time",
    "ccp_interval_time_for_m",
    "cscp_interval_time",
    "scp_optimal_sublength",
    "ccp_interval_time_derivative",
    "expected_faults_per_interval",
]


def _validate(span: float, rate: float, store: float, compare: float, rollback: float) -> None:
    if not span > 0:
        raise ParameterError(f"span must be > 0, got {span}")
    if rate < 0:
        raise ParameterError(f"rate must be >= 0, got {rate}")
    if store < 0 or compare < 0 or rollback < 0:
        raise ParameterError("checkpoint costs must be >= 0")


def expected_faults_per_interval(span: float, rate: float) -> float:
    """``e^{r·T} − 1`` — expected detected faults per completed interval.

    This is exact for a single CSCP interval (renewal argument: the
    expected number of attempts is ``e^{rT}``) and is the fault-count
    factor the paper's closed forms use for subdivided intervals.
    Uses ``expm1`` for accuracy at small ``r·T``.
    """
    if span < 0:
        raise ParameterError(f"span must be >= 0, got {span}")
    if rate < 0:
        raise ParameterError(f"rate must be >= 0, got {rate}")
    return math.expm1(rate * span)


def scp_interval_time(
    sublength: float,
    *,
    span: float,
    rate: float,
    store: float,
    compare: float,
    rollback: float = 0.0,
) -> float:
    """``R1(T1)`` — expected time of one CSCP interval with extra SCPs.

    Paper eq. (1), reconstructed (see DESIGN.md §2):

    ``R1(T1) = T + m·t_s + t_cp
             + [ (T + T1)/2 + ((m+1)/2)·t_s + t_cp + t_r ]·(e^{rT} − 1)``

    with ``m = T/T1`` treated as continuous.  The three terms of the
    bracket are the expected wasted work (a fault strikes uniformly, is
    detected at the CSCP, and execution resumes from the store preceding
    it), the expected re-done stores, and the comparison + rollback paid
    per detected fault.

    Limiting behaviour (asserted in the tests):

    * ``T1 → 0+`` ⇒ ``R1 → ∞`` (stores dominate);
    * ``T1 = T`` ⇒ ``R1 = (T + t_s + t_cp)·e^{rT} + t_r·(e^{rT} − 1)``,
      the classical single-checkpoint renewal result.
    """
    _validate(span, rate, store, compare, rollback)
    if not 0 < sublength <= span:
        raise ParameterError(
            f"sublength must be in (0, span]; got {sublength} with span={span}"
        )
    m = span / sublength
    faults = expected_faults_per_interval(span, rate)
    fault_free = span + m * store + compare
    per_fault = (span + sublength) / 2.0 + (m + 1.0) / 2.0 * store + compare + rollback
    return fault_free + per_fault * faults


def scp_interval_time_for_m(
    m: int,
    *,
    span: float,
    rate: float,
    store: float,
    compare: float,
    rollback: float = 0.0,
) -> float:
    """``R1`` evaluated at the integer subdivision count ``m``."""
    if m < 1:
        raise ParameterError(f"m must be >= 1, got {m}")
    return scp_interval_time(
        span / m, span=span, rate=rate, store=store, compare=compare, rollback=rollback
    )


def ccp_interval_time(
    sublength: float,
    *,
    span: float,
    rate: float,
    store: float,
    compare: float,
    rollback: float = 0.0,
) -> float:
    """``R2(T2)`` — expected time of one CSCP interval with extra CCPs.

    Paper eq. (2), reconstructed (see DESIGN.md §2):

    ``R2(T2) = t_s·e^{rT2}
             + (T2 + t_cp)·(e^{rT} − 1)/(1 − e^{−rT2})
             + t_r·(e^{rT} − 1)``

    Derivation: each attempt at the interval walks sub-intervals of
    length ``T2``, comparing after each; a fault in a sub-interval is
    caught at its closing comparison and restarts the interval.  Solving
    the renewal equation exactly (geometric retries with detection lag
    ≤ one sub-interval) yields the closed form above.

    Limiting behaviour (asserted in the tests):

    * ``T2 → 0+`` ⇒ ``R2 → ∞`` (comparisons dominate);
    * ``T2 = T`` ⇒ ``R2 = (T + t_s + t_cp)·e^{rT} + t_r·(e^{rT} − 1)``.

    For ``rate = 0`` the fault terms vanish and
    ``R2 = t_s + m·(T2 + t_cp)`` with ``m = T/T2``.
    """
    _validate(span, rate, store, compare, rollback)
    if not 0 < sublength <= span:
        raise ParameterError(
            f"sublength must be in (0, span]; got {sublength} with span={span}"
        )
    if rate == 0:
        m = span / sublength
        return store + m * compare + span
    faults = expected_faults_per_interval(span, rate)
    # (e^{rT} − 1)/(1 − e^{−rT2}) is the expected TOTAL number of
    # sub-interval attempts (fault-free passes included); each costs
    # T2 + t_cp.  The store at the closing CSCP is executed once per
    # pass over the final sub-interval: expected e^{rT2} times.
    attempts = faults / (-math.expm1(-rate * sublength))
    return (
        (sublength + compare) * attempts
        + store * math.exp(rate * sublength)
        + rollback * faults
    )


def ccp_interval_time_for_m(
    m: int,
    *,
    span: float,
    rate: float,
    store: float,
    compare: float,
    rollback: float = 0.0,
) -> float:
    """``R2`` evaluated at the integer subdivision count ``m``."""
    if m < 1:
        raise ParameterError(f"m must be >= 1, got {m}")
    return ccp_interval_time(
        span / m, span=span, rate=rate, store=store, compare=compare, rollback=rollback
    )


def cscp_interval_time(
    span: float,
    *,
    rate: float,
    store: float,
    compare: float,
    rollback: float = 0.0,
) -> float:
    """Expected time of a plain CSCP interval (no subdivision, ``m = 1``).

    ``R(T) = (T + t_s + t_cp)·e^{rT} + t_r·(e^{rT} − 1)`` — the exact
    renewal solution both R1 and R2 collapse to at ``m = 1``.  This is
    the per-interval model of the ``A_D`` (ADT_DVS) baseline and of the
    static Poisson / k-fault-tolerant schemes.
    """
    _validate(span, rate, store, compare, rollback)
    faults = expected_faults_per_interval(span, rate)
    return (span + store + compare) * (1.0 + faults) + rollback * faults


def scp_optimal_sublength(span: float, *, rate: float, store: float) -> float:
    """``T̃1 = sqrt(T·t_s·coth(rT/2))`` — continuous minimiser of R1.

    Obtained by differentiating eq. (1) with respect to ``T1`` (paper
    §2.1): the only ``T1``-dependent terms are ``(T/T1)·t_s`` (linear in
    ``m``) and ``(T1/2 + (T/T1)·t_s/2)·(e^{rT} − 1)``; setting the
    derivative to zero yields
    ``T1² = T·t_s·(e^{rT} + 1)/(e^{rT} − 1)``.

    For ``rate = 0`` or ``store = 0`` the minimiser degenerates (no
    fault pressure / free stores); we return ``inf`` and ``0``
    respectively and let :func:`repro.core.optimizer.num_scp` apply its
    clamps.
    """
    if not span > 0:
        raise ParameterError(f"span must be > 0, got {span}")
    if rate < 0 or store < 0:
        raise ParameterError("rate and store must be >= 0")
    if rate == 0:
        return math.inf
    if store == 0:
        return 0.0
    half = rate * span / 2.0
    coth = 1.0 / math.tanh(half)
    return math.sqrt(span * store * coth)


def ccp_interval_time_derivative(
    sublength: float,
    *,
    span: float,
    rate: float,
    store: float,
    compare: float,
) -> float:
    """``dR2/dT2`` — analytic derivative used to verify the optimiser.

    ``R2' = r·t_s·e^{rT2}
          + (e^{rT} − 1)·[(1 − e^{−rT2}) − (T2 + t_cp)·r·e^{−rT2}]
            /(1 − e^{−rT2})²``

    (for ``rate = 0`` the fault-free form ``t_s + T + (T/T2)·t_cp``
    differentiates to ``−T·t_cp/T2²``).
    """
    _validate(span, rate, store, compare, 0.0)
    if not 0 < sublength <= span:
        raise ParameterError("sublength must be in (0, span]")
    if rate == 0:
        return -span * compare / (sublength * sublength)
    faults = expected_faults_per_interval(span, rate)
    denom = -math.expm1(-rate * sublength)
    retry_part = (
        faults
        * (denom - (sublength + compare) * rate * math.exp(-rate * sublength))
        / (denom * denom)
    )
    store_part = rate * store * math.exp(rate * sublength)
    return retry_part + store_part
