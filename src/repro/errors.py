"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing genuine programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParameterError(ReproError, ValueError):
    """A model parameter is outside its mathematically valid domain."""


class InfeasibleError(ReproError):
    """The requested configuration can never meet its deadline.

    Raised by analytical routines when asked for a quantity that does
    not exist (for example a finite checkpoint interval for a task whose
    fault-free execution time already exceeds the deadline).  The
    simulator never raises this: an infeasible run simply completes with
    ``timely=False``.
    """


class SimulationError(ReproError):
    """The simulator detected an internal inconsistency.

    This signals a bug (e.g. the event loop exceeded its safety bound),
    never an ordinary task failure.
    """


class ConfigurationError(ReproError):
    """An experiment/table specification is malformed or unknown."""


class ServiceUnavailableError(ReproError):
    """The study service is saturated; retry after backing off.

    Raised when a submission arrives while the service's bounded
    admission queue is full.  The HTTP layer maps it to ``503`` with a
    ``Retry-After`` header, and the client's retry loop honours it —
    resubmitting is always safe because study submissions are
    idempotent (content-addressed cell cache, deterministic results).
    """
