"""repro.api — the declarative study façade.

One import gives the whole pipeline::

    from repro.api import Session, Study, StudySpec, ResultSet

    spec = StudySpec(kind="table", table="1a", reps=2000, seed=2006)
    with Session(backend="process") as session:
        results = session.run(spec)           # a ResultSet
    results.save("table1a.json")              # exact, resumable
    # later / elsewhere:
    partial = ResultSet.load("table1a.json")
    Study(spec).run(resume=partial)           # computes only missing cells

* :class:`Session` owns one execution backend for its lifetime (the
  CLI flags, as an object).
* :class:`StudySpec` describes any of the library's experiments as
  data — tables, rows, fixed-m / rate-factor ablations, utilisation
  sweeps, operating maps — with JSON round-tripping and a stable
  content hash.
* :class:`Study` binds a spec to its canonical cell list and runs it;
  resume-from-partial recomputes only missing cells, bit-identically.
* :class:`ResultSet` is the first-class result: cell-level records
  with full provenance, exact JSON round-trip (NaN included), CSV
  export, and merge of disjoint partial runs.

The legacy entrypoints (``run_table``, ``fixed_m_study``,
``utilization_sweep``, ``operating_map``, …) are thin shims over this
façade and remain supported; estimates are bit-identical either way.
"""

from repro.api.plans import CellPlan
from repro.api.results import CellRecord, ResultSet
from repro.api.session import Session
from repro.api.spec import STUDY_KINDS, StudySpec
from repro.api.study import Study

__all__ = [
    "CellPlan",
    "CellRecord",
    "ResultSet",
    "Session",
    "Study",
    "StudySpec",
    "STUDY_KINDS",
]
