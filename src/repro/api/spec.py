"""Declarative study specifications: one dataclass for every experiment.

A :class:`StudySpec` expresses an experiment the way the paper's own
harness would — as data: which kind of study, which published table
anchors the costs and schemes, which grid axes, how many reps, which
seed.  It serialises to/from JSON (``repro run spec.json``), hashes
stably (:attr:`StudySpec.spec_hash` — the provenance tag every
:class:`~repro.api.results.ResultSet` record carries), and expands to
the canonical cell list via :mod:`repro.api.plans`, so a spec run
through the façade lands on the bit-identical estimates of the legacy
entrypoint it describes.

Kinds and their legacy counterparts:

==================  =====================================================
``table``           ``repro.experiments.tables.run_table``
``row``             ``repro.experiments.tables.run_row``
``fixed_m``         ``repro.experiments.sweeps.fixed_m_study``
``rate_factor``     ``repro.experiments.sweeps.rate_factor_study``
``utilization``     ``repro.experiments.sweeps.utilization_sweep``
``operating_map``   ``repro.experiments.sensitivity.operating_map``
``taskset``         ``repro.workloads`` multi-task EDF/RM scenarios
``frontier``        ``repro.workloads`` energy/time Pareto sweeps
==================  =====================================================

Unset ``reps``/``seed`` (and kind-specific axes) resolve to the same
defaults the legacy entrypoint uses, so a minimal spec like
``{"kind": "table", "table": "1a"}`` reproduces ``run_table("1a")``
exactly.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace
from typing import Dict, List, Optional, Tuple

from repro.api.plans import (
    CellPlan,
    fixed_m_cells,
    frontier_cells,
    operating_map_cells,
    rate_factor_cells,
    row_cells,
    table_cells,
    taskset_cells,
    utilization_cells,
)
from repro.errors import ConfigurationError
from repro.experiments.config import TableSpec, table_spec
from repro.rts.generators import WORKLOAD_PATTERNS

__all__ = ["StudySpec", "STUDY_KINDS", "KIND_SUMMARIES"]

#: The study kinds the façade understands, each mirroring one legacy
#: experiment entrypoint (see module docstring).
STUDY_KINDS = (
    "table",
    "row",
    "fixed_m",
    "rate_factor",
    "utilization",
    "operating_map",
    "taskset",
    "frontier",
)

#: One-line description per kind.  The single source both the CLI help
#: (``repro run --list-kinds``) and error text derive from, so a new
#: kind cannot drift out of the docs.  Keys mirror :data:`STUDY_KINDS`
#: exactly (pinned by a test).
KIND_SUMMARIES = {
    "table": "a published table's full scheme × row grid",
    "row": "one (U, lam) row of a published table",
    "fixed_m": "fixed-subdivision ablation at one task point",
    "rate_factor": "analysis-rate sensitivity at one task point",
    "utilization": "scheme comparison across a utilization grid",
    "operating_map": "best-scheme map over a (U, lam) grid",
    "taskset": "generated multi-task workloads under EDF/RM",
    "frontier": "energy/time Pareto sweep over (f, n) checkpoints",
}

#: Per-kind (reps, seed) defaults — the legacy entrypoints' own.
_KIND_DEFAULTS = {
    "table": (2000, 2006),
    "row": (2000, 2006),
    "fixed_m": (1000, 0),
    "rate_factor": (1000, 0),
    "utilization": (500, 0),
    "operating_map": (300, 0),
    "taskset": (200, 0),
    "frontier": (1000, 0),
}

#: Default fixed subdivisions (the CLI's ablation grid).
_DEFAULT_MS = (1, 2, 4, 8, 16)
#: Default analysis-rate factors (``rate_factor_study``'s own).
_DEFAULT_FACTORS = (1.0, 2.0)
#: Taskset-study defaults: the curated pattern mix, a moderate
#: utilization grid, and the workload engine's own parameters.
_DEFAULT_PATTERNS = ("light", "bursty", "heavy")
_DEFAULT_TASKSET_U_GRID = (0.5, 0.7, 0.9)
_DEFAULT_TASKSET_LAM = 1e-4
_DEFAULT_N_TASKS = 4
_DEFAULT_HORIZON = 20_000.0
_DEFAULT_SCHED = "edf"
#: Candidate frequency ladder (taskset selection / frontier sweep axis).
_DEFAULT_FREQS = (1.0, 2.0)

#: Axis fields each kind may set.  Anything else is rejected at
#: construction: a stray axis would be silently ignored by ``cells()``
#: but still change ``spec_hash``, making two identical studies refuse
#: to resume from each other.
_KIND_AXES = {
    "table": frozenset(),
    "row": frozenset({"u", "lam"}),
    "fixed_m": frozenset({"u", "lam", "ms"}),
    "rate_factor": frozenset({"u", "lam", "factors"}),
    "utilization": frozenset({"lam", "u_grid"}),
    "operating_map": frozenset({"u_grid", "lam_grid"}),
    "taskset": frozenset(
        {"lam", "u_grid", "patterns", "n_tasks", "horizon", "sched", "freqs"}
    ),
    "frontier": frozenset({"u", "lam", "ms", "freqs"}),
}
_AXIS_FIELDS = (
    "u",
    "lam",
    "u_grid",
    "lam_grid",
    "ms",
    "factors",
    "patterns",
    "n_tasks",
    "horizon",
    "sched",
    "freqs",
)


def _is_int(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _coerce(value, kind):
    """``value`` as an exact int/float, or raise (never truncate).

    A seed of ``1.5`` silently truncated to ``1`` would compute the
    estimates of seed 1 under a different spec hash — refuse instead.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(f"not a number: {value!r}")
    if kind is int:
        if isinstance(value, float):
            raise ConfigurationError(f"not an integer: {value!r}")
        return value
    return float(value)


@dataclass(frozen=True)
class StudySpec:
    """Declarative description of one study (see module docstring).

    Parameters
    ----------
    kind:
        One of :data:`STUDY_KINDS`.
    table:
        Published table id (``"1a"`` … ``"4b"``) anchoring costs,
        fault budget, frequencies and scheme columns.
    reps / seed:
        Monte-Carlo repetitions per cell and the root seed.  ``None``
        resolves to the matching legacy entrypoint's default.
    u / lam:
        The single (U, λ) point of a ``row`` study; the task anchor of
        ``fixed_m`` / ``rate_factor`` studies (``None`` = the table's
        first row); the fixed λ of a ``utilization`` study (``u``
        unused there).
    u_grid / lam_grid:
        Grid axes of ``utilization`` (``u_grid``) and ``operating_map``
        (both) studies.
    ms / factors:
        The fixed subdivisions of a ``fixed_m`` study and the analysis-
        rate factors of a ``rate_factor`` study.  For a ``frontier``
        study ``ms`` is the checkpoint-count axis of the sweep.
    patterns / n_tasks / horizon / sched / freqs:
        ``taskset``-study knobs: the workload patterns to generate
        (see :data:`repro.rts.generators.WORKLOAD_PATTERNS`), tasks per
        workload, simulated horizon (time units), scheduling policy
        (``"edf"``/``"rm"``), and the candidate frequency ladder for
        feasibility-then-lowest-energy selection.  ``u_grid`` is the
        target-utilization axis and ``lam`` the per-task fault rate
        there.  A ``frontier`` study uses ``freqs`` as the frequency
        axis of its ``(f, n)`` sweep.
    fast_static:
        Route static-scheme cells through the vectorised fast path
        (grid kinds only; statistically consistent, not bit-comparable
        to the executor).
    faults_during_overhead:
        Inject faults during checkpoint overhead (``table``/``row``
        kinds; incompatible with ``fast_static``).
    kernel:
        Executor engine for the study's executor cells: ``"exact"``
        (default, bit-identical, golden-pinned) or ``"fast"`` (the
        vectorised kernel — statistically equivalent, block-
        deterministic).  ``"exact"`` is elided from the canonical
        payload, so pre-existing spec hashes are unchanged; ``"fast"``
        changes :attr:`spec_hash`, which is what keeps exact and fast
        partials from silently merging.
    """

    kind: str
    table: str = "1a"
    reps: Optional[int] = None
    seed: Optional[int] = None
    u: Optional[float] = None
    lam: Optional[float] = None
    u_grid: Tuple[float, ...] = ()
    lam_grid: Tuple[float, ...] = ()
    ms: Tuple[int, ...] = ()
    factors: Tuple[float, ...] = ()
    patterns: Tuple[str, ...] = ()
    n_tasks: Optional[int] = None
    horizon: Optional[float] = None
    sched: Optional[str] = None
    freqs: Tuple[float, ...] = ()
    fast_static: bool = False
    faults_during_overhead: bool = False
    kernel: str = "exact"

    def __post_init__(self) -> None:
        if self.kind not in STUDY_KINDS:
            raise ConfigurationError(
                f"unknown study kind {self.kind!r}; valid kinds: "
                f"{', '.join(STUDY_KINDS)}"
            )
        if not isinstance(self.table, str):
            raise ConfigurationError(
                f"table must be a table id string, got {self.table!r}"
            )
        # Field types are validated (and floats canonicalised) here so
        # a malformed JSON spec fails with a clean ConfigurationError,
        # and so equivalent spellings ("ms": [1, 2] vs [1.0, 2.0])
        # hash identically.
        for name, kind in (("u_grid", float), ("lam_grid", float),
                           ("factors", float), ("ms", int),
                           ("freqs", float)):
            value = getattr(self, name)
            try:
                coerced = tuple(_coerce(item, kind) for item in value)
            except (TypeError, ConfigurationError):
                raise ConfigurationError(
                    f"{name} must be a sequence of {kind.__name__}s, "
                    f"got {value!r}"
                )
            if len(set(coerced)) != len(coerced):
                # A duplicate grid value would duplicate cell keys —
                # caught only after the whole study has been computed.
                raise ConfigurationError(
                    f"{name} contains duplicate values: {value!r}"
                )
            object.__setattr__(self, name, coerced)
        for name in ("reps", "seed"):
            value = getattr(self, name)
            if value is not None and not _is_int(value):
                raise ConfigurationError(
                    f"{name} must be an integer, got {value!r}"
                )
        for name in ("u", "lam", "horizon"):
            value = getattr(self, name)
            if value is not None:
                try:
                    object.__setattr__(self, name, _coerce(value, float))
                except (TypeError, ConfigurationError):
                    raise ConfigurationError(
                        f"{name} must be a number, got {value!r}"
                    )
        if not isinstance(self.patterns, (tuple, list)) or not all(
            isinstance(item, str) for item in self.patterns
        ):
            raise ConfigurationError(
                f"patterns must be a sequence of strings, got {self.patterns!r}"
            )
        object.__setattr__(self, "patterns", tuple(self.patterns))
        unknown_patterns = [
            p for p in self.patterns if p not in WORKLOAD_PATTERNS
        ]
        if unknown_patterns:
            raise ConfigurationError(
                f"unknown workload pattern(s) "
                f"{', '.join(map(repr, unknown_patterns))}; valid "
                f"patterns: {', '.join(WORKLOAD_PATTERNS)}"
            )
        if len(set(self.patterns)) != len(self.patterns):
            raise ConfigurationError(
                f"patterns contains duplicate values: {self.patterns!r}"
            )
        if self.n_tasks is not None and (
            not _is_int(self.n_tasks) or self.n_tasks < 1
        ):
            raise ConfigurationError(
                f"n_tasks must be a positive integer, got {self.n_tasks!r}"
            )
        if self.horizon is not None and self.horizon <= 0:
            raise ConfigurationError(
                f"horizon must be > 0, got {self.horizon}"
            )
        if self.sched is not None and self.sched not in ("edf", "rm"):
            raise ConfigurationError(
                f"sched must be 'edf' or 'rm', got {self.sched!r}"
            )
        for name in ("fast_static", "faults_during_overhead"):
            if not isinstance(getattr(self, name), bool):
                raise ConfigurationError(
                    f"{name} must be a boolean, got {getattr(self, name)!r}"
                )
        if self.kernel not in ("exact", "fast"):
            raise ConfigurationError(
                f"kernel must be 'exact' or 'fast', got {self.kernel!r}"
            )
        if self.reps is not None and self.reps <= 0:
            raise ConfigurationError(f"reps must be > 0, got {self.reps}")
        allowed = _KIND_AXES[self.kind]
        stray = [
            name
            for name in _AXIS_FIELDS
            if name not in allowed
            and getattr(self, name) not in (None, ())
        ]
        if stray:
            raise ConfigurationError(
                f"field(s) {', '.join(stray)} do not apply to a "
                f"{self.kind!r} study"
            )
        if self.kind == "row" and (self.u is None or self.lam is None):
            raise ConfigurationError("a 'row' study needs both u and lam")
        if self.kind == "utilization":
            if not self.u_grid:
                raise ConfigurationError(
                    "a 'utilization' study needs a non-empty u_grid"
                )
            if self.lam is None:
                raise ConfigurationError("a 'utilization' study needs lam")
        if self.kind == "operating_map" and not (self.u_grid and self.lam_grid):
            raise ConfigurationError(
                "an 'operating_map' study needs non-empty u_grid and lam_grid"
            )
        if any(f <= 0 for f in self.freqs):
            raise ConfigurationError(
                f"freqs must all be > 0, got {self.freqs!r}"
            )
        if self.kind == "frontier" and any(m < 1 for m in self.ms):
            raise ConfigurationError(
                f"a 'frontier' study needs checkpoint counts >= 1 in ms, "
                f"got {self.ms!r}"
            )
        if self.fast_static and self.kind in ("fixed_m", "rate_factor"):
            raise ConfigurationError(
                f"fast_static does not apply to {self.kind!r} studies "
                f"(every cell is an adaptive executor cell)"
            )
        if self.fast_static and self.kind in ("taskset", "frontier"):
            raise ConfigurationError(
                f"fast_static does not apply to {self.kind!r} studies"
            )
        if self.kernel == "fast" and self.kind == "taskset":
            # The schedule simulator has no fast twin; accepting the
            # flag would fork the spec hash without changing a single
            # estimate, so two identical studies could refuse to merge.
            raise ConfigurationError(
                "kernel='fast' does not apply to 'taskset' studies"
            )
        if self.faults_during_overhead and self.kind not in ("table", "row"):
            raise ConfigurationError(
                "faults_during_overhead only applies to table/row studies"
            )

    # -- resolution ----------------------------------------------------

    def resolve_table(self) -> TableSpec:
        """The :class:`TableSpec` this study is anchored to."""
        return table_spec(self.table)

    def resolved(self) -> "StudySpec":
        """A copy with every defaulted field made explicit.

        This is the canonical form: what :attr:`spec_hash` hashes and
        what :meth:`to_dict` serialises, so a minimal spec and its
        fully spelled-out twin are the same study.
        """
        default_reps, default_seed = _KIND_DEFAULTS[self.kind]
        updates: Dict[str, object] = {}
        if self.reps is None:
            updates["reps"] = default_reps
        if self.seed is None:
            updates["seed"] = default_seed
        if self.kind in ("fixed_m", "rate_factor", "frontier") and (
            self.u is None or self.lam is None
        ):
            u, lam = self.resolve_table().rows[0]
            updates.setdefault("u", self.u if self.u is not None else u)
            updates.setdefault(
                "lam", self.lam if self.lam is not None else lam
            )
        if self.kind in ("fixed_m", "frontier") and not self.ms:
            updates["ms"] = _DEFAULT_MS
        if self.kind == "rate_factor" and not self.factors:
            updates["factors"] = _DEFAULT_FACTORS
        if self.kind in ("taskset", "frontier") and not self.freqs:
            updates["freqs"] = _DEFAULT_FREQS
        if self.kind == "taskset":
            if not self.patterns:
                updates["patterns"] = _DEFAULT_PATTERNS
            if not self.u_grid:
                updates["u_grid"] = _DEFAULT_TASKSET_U_GRID
            if self.lam is None:
                updates["lam"] = _DEFAULT_TASKSET_LAM
            if self.n_tasks is None:
                updates["n_tasks"] = _DEFAULT_N_TASKS
            if self.horizon is None:
                updates["horizon"] = _DEFAULT_HORIZON
            if self.sched is None:
                updates["sched"] = _DEFAULT_SCHED
        return replace(self, **updates) if updates else self

    # -- expansion -----------------------------------------------------

    def cells(self, table: Optional[TableSpec] = None) -> List[CellPlan]:
        """The study's ordered cell list (see :mod:`repro.api.plans`).

        ``table`` substitutes a custom :class:`TableSpec` for the
        registry lookup — the hook :class:`~repro.api.study.Study` uses
        so legacy callers holding a bespoke spec object still flow
        through the canonical expansion.
        """
        spec = self.resolved()
        tspec = table if table is not None else spec.resolve_table()
        if spec.kind == "table":
            return table_cells(
                tspec,
                reps=spec.reps,
                seed=spec.seed,
                faults_during_overhead=spec.faults_during_overhead,
                fast_static=spec.fast_static,
            )
        if spec.kind == "row":
            return row_cells(
                tspec,
                spec.u,
                spec.lam,
                reps=spec.reps,
                seed=spec.seed,
                faults_during_overhead=spec.faults_during_overhead,
                fast_static=spec.fast_static,
            )
        if spec.kind == "fixed_m":
            return fixed_m_cells(
                tspec.task(spec.u, spec.lam),
                spec.ms,
                reps=spec.reps,
                seed=spec.seed,
            )
        if spec.kind == "rate_factor":
            return rate_factor_cells(
                tspec.task(spec.u, spec.lam),
                spec.factors,
                reps=spec.reps,
                seed=spec.seed,
            )
        if spec.kind == "utilization":
            return utilization_cells(
                tspec,
                spec.u_grid,
                spec.lam,
                reps=spec.reps,
                seed=spec.seed,
                fast_static=spec.fast_static,
            )
        if spec.kind == "taskset":
            return taskset_cells(
                spec.patterns,
                spec.u_grid,
                spec.lam,
                n_tasks=spec.n_tasks,
                horizon=spec.horizon,
                sched=spec.sched,
                freqs=spec.freqs,
                reps=spec.reps,
                seed=spec.seed,
            )
        if spec.kind == "frontier":
            return frontier_cells(
                tspec.task(spec.u, spec.lam),
                spec.freqs,
                spec.ms,
                reps=spec.reps,
                seed=spec.seed,
            )
        return operating_map_cells(
            tspec,
            spec.u_grid,
            spec.lam_grid,
            reps=spec.reps,
            seed=spec.seed,
            fast_static=spec.fast_static,
        )

    # -- serialisation -------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """The canonical (resolved, defaults-elided) JSON payload."""
        spec = self.resolved()
        payload: Dict[str, object] = {}
        for field in fields(spec):
            value = getattr(spec, field.name)
            if value is None or value == ():
                continue
            if field.name in ("fast_static", "faults_during_overhead") and not value:
                continue
            if field.name == "kernel" and value == "exact":
                # Elided so every pre-kernel spec hash is unchanged.
                continue
            payload[field.name] = list(value) if isinstance(value, tuple) else value
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "StudySpec":
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"a study spec must be a JSON object, got {type(payload).__name__}"
            )
        known = {field.name for field in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown study spec field(s): {', '.join(unknown)}; "
                f"valid fields: {', '.join(sorted(known))}"
            )
        if "kind" not in payload:
            raise ConfigurationError("a study spec needs a 'kind' field")
        return cls(**payload)

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "StudySpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid study spec JSON: {exc}")
        return cls.from_dict(payload)

    @classmethod
    def from_file(cls, path: str) -> "StudySpec":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise ConfigurationError(f"cannot read study spec {path!r}: {exc}")
        return cls.from_json(text)

    @property
    def spec_hash(self) -> str:
        """Stable content hash of the resolved spec (provenance tag).

        Two specs describing the same study — whether defaults were
        spelled out or not — hash identically; any change to the grid,
        seed, reps or execution-relevant flags changes the hash, which
        is what makes resume/merge safe to gate on it.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]
