"""The cell scheduler: one compute loop for every study client.

Before this module, :meth:`repro.api.study.Study.run` owned the loop
that turned missing :class:`~repro.api.plans.CellPlan`\\ s into
provenance-stamped :class:`~repro.api.results.CellRecord`\\ s.  The
study service needs that exact loop too — plus memoisation and
concurrency — so it lives here once and both are clients:

* :class:`~repro.api.study.Study` builds a private, cache-less
  scheduler per run (behaviour identical to the old in-study loop);
* the service (:mod:`repro.service`) shares one scheduler across every
  HTTP submission, backed by a content-addressed
  :class:`~repro.service.cache.CellCache`, so overlapping studies from
  concurrent clients compute each unique cell exactly once.

Identity, not study membership, is the unit of reuse: a cell is keyed
by :func:`~repro.api.plans.cell_identity` (job content + block size +
kernel), and a cached estimate is served *verbatim* — the same
:class:`~repro.sim.montecarlo.CellEstimate` bytes the original
computation produced, restamped only with the requesting study's key,
axes and spec hash.  ``exact`` and ``fast`` kernel cells have different
identities by construction and can never alias.

Thread safety: the scheduler may be hammered by many request threads.
Claims are arbitrated under one lock; the first thread to want a cell
computes it, later threads block on its completion event; calls into
the session's backend are serialised by a FIFO turnstile (the backend
parallelises internally — two interleaved ``run_cells`` batches on one
pool would fight over the same workers anyway).

Fairness: with ``fair_share`` set, a caller's cells run in chunks of
that many per turnstile turn instead of one monolithic batch, and the
turnstile hands turns out in arrival order — so concurrent submissions
round-robin at chunk granularity and a 10,000-cell study delays a
4-cell study by one chunk, not by its whole runtime.  ``None`` (the
default, and what :meth:`Study.run`'s private scheduler uses) keeps the
single-batch behaviour and its provenance stamps bit-identical to the
pre-fairness scheduler.
"""

from __future__ import annotations

import threading
import uuid
from collections import deque
from contextlib import contextmanager
from typing import Callable, Deque, Dict, List, Optional, Sequence

from repro.api.plans import CellPlan, cell_identity
from repro.api.results import CellRecord, git_describe
from repro.api.session import Session, timed_run_cells
from repro.errors import ParameterError, SimulationError

__all__ = ["CellScheduler", "job_with_kernel"]

#: Progress callback: ``(plan, record, cached)`` as each cell resolves.
ProgressCallback = Callable[[CellPlan, CellRecord, bool], None]


def job_with_kernel(job: object, kernel: str) -> object:
    """Stamp the effective kernel onto a cell job, where it applies.

    Only :class:`~repro.sim.backends.CellJob` carries a ``kernel``
    field; static fast-path jobs (``StaticCellJob``) are already a
    closed-form vectorised sampler with one deterministic stream, so
    the mode is a no-op for them and they ship unchanged.
    """
    if kernel == "exact" or not hasattr(job, "kernel"):
        return job
    import dataclasses

    return dataclasses.replace(job, kernel=kernel)


class _Pending:
    """One in-flight cell: who waits, and what it resolved to."""

    __slots__ = ("event", "record", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.record: Optional[CellRecord] = None
        self.error: Optional[BaseException] = None


class _Turnstile:
    """FIFO mutual exclusion: turns are granted in arrival order.

    ``threading.Lock`` makes no fairness promise — a thread hammering
    acquire/release in a loop can starve patient waiters indefinitely,
    which is exactly the shape of a huge study computing chunk after
    chunk while a small one waits.  Each waiter therefore queues an
    event; releasing wakes the *head* of the queue, so interleaved
    chunked submissions round-robin by construction.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._waiters: Deque[threading.Event] = deque()

    @contextmanager
    def turn(self):
        ticket = threading.Event()
        with self._lock:
            self._waiters.append(ticket)
            if len(self._waiters) == 1:
                ticket.set()
        ticket.wait()
        try:
            yield
        finally:
            with self._lock:
                self._waiters.popleft()
                if self._waiters:
                    self._waiters[0].set()


class CellScheduler:
    """Runs cell plans through one session, deduplicating and memoising.

    Parameters
    ----------
    session:
        The :class:`~repro.api.session.Session` whose backend computes
        cache misses.  The scheduler borrows it; closing is the
        caller's business.
    cache:
        Optional content-addressed store with ``get(identity) ->
        CellRecord | None`` and ``put(identity, record)`` (the
        service's :class:`~repro.service.cache.CellCache`).  ``None``
        means no memoisation across calls — in-flight deduplication
        between concurrent callers still applies.
    fair_share:
        Cells per compute turn.  ``None`` (default) computes each
        caller's misses as one batch — the historical behaviour, with
        identical provenance stamps.  A positive value chunks the batch
        and takes one FIFO turnstile turn per chunk, so concurrent
        submissions interleave round-robin instead of queueing whole
        studies (each chunk gets its own ``batch`` id and timings).

    Counters (``hits``/``misses``/``uncacheable``) accumulate across
    the scheduler's lifetime and feed the service's ``/stats``.
    """

    def __init__(
        self,
        session: Session,
        *,
        cache: Optional[object] = None,
        fair_share: Optional[int] = None,
    ) -> None:
        if fair_share is not None and fair_share < 1:
            raise ParameterError(
                f"fair_share must be >= 1 (or None for one batch per "
                f"caller), got {fair_share}"
            )
        self.session = session
        self.cache = cache
        self.fair_share = fair_share
        self._lock = threading.Lock()
        self._turnstile = _Turnstile()
        self._inflight: Dict[str, _Pending] = {}
        self.hits = 0
        self.misses = 0
        self.uncacheable = 0

    # -- stats ---------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "uncacheable": self.uncacheable,
                "in_flight": len(self._inflight),
                "fair_share": self.fair_share,
            }

    # -- the loop ------------------------------------------------------

    def run_plans(
        self,
        plans: Sequence[CellPlan],
        *,
        spec_hash: str,
        kernel: str = "exact",
        progress: Optional[ProgressCallback] = None,
    ) -> List[CellRecord]:
        """Resolve every plan to a :class:`CellRecord`, in plan order.

        Cache hits (and cells another thread is already computing) are
        served verbatim and restamped with this study's key/axes/spec
        hash; the rest are computed as one batch on the session's
        backend and stamped with fresh provenance — exactly the records
        the pre-scheduler ``Study.run`` loop produced.

        ``progress`` fires once per cell: immediately for cache hits,
        on batch completion for computed cells, after the wait for
        cells another caller computed.
        """
        jobs = [job_with_kernel(plan.job, kernel) for plan in plans]
        identities = [
            cell_identity(job, block_size=self.session.block_size)
            for job in jobs
        ]

        records: List[Optional[CellRecord]] = [None] * len(plans)
        todo: List[int] = []  # positions this call must compute
        waiting: List[tuple] = []  # (position, pending another thread owns)

        with self._lock:
            for position, identity in enumerate(identities):
                if identity is None:
                    self.uncacheable += 1
                    todo.append(position)
                    continue
                cached = self.cache.get(identity) if self.cache else None
                if cached is not None:
                    self.hits += 1
                    records[position] = self._restamp(
                        cached, plans[position], spec_hash
                    )
                    continue
                pending = self._inflight.get(identity)
                if pending is not None:
                    self.hits += 1
                    waiting.append((position, pending))
                    continue
                self.misses += 1
                self._inflight[identity] = _Pending()
                todo.append(position)

        if progress is not None:
            for position in range(len(plans)):
                if records[position] is not None:
                    progress(plans[position], records[position], True)

        if todo:
            self._compute(
                plans, jobs, identities, todo, records, spec_hash, kernel,
                progress,
            )

        for position, pending in waiting:
            record = self._await_pending(identities[position], pending)
            if record is None:
                raise SimulationError(
                    f"cell {plans[position].key!r} was claimed by another "
                    f"caller but never resolved"
                )
            records[position] = self._restamp(record, plans[position], spec_hash)
            if progress is not None:
                progress(plans[position], records[position], True)

        return records  # type: ignore[return-value] - every slot filled

    # -- internals -----------------------------------------------------

    def _compute(
        self,
        plans: Sequence[CellPlan],
        jobs: Sequence[object],
        identities: Sequence[Optional[str]],
        todo: Sequence[int],
        records: List[Optional[CellRecord]],
        spec_hash: str,
        kernel: str,
        progress: Optional[ProgressCallback],
    ) -> None:
        """Run the claimed cells chunk by chunk; always release claims.

        With ``fair_share=None`` the whole ``todo`` list is one chunk —
        one ``timed_run_cells`` call, one batch stamp, exactly the
        historical behaviour.  Otherwise each chunk takes its own
        turnstile turn, so other callers' chunks interleave between
        ours.
        """
        share = self.fair_share or len(todo)
        try:
            for start in range(0, len(todo), share):
                chunk = todo[start : start + share]
                with self._turnstile.turn():
                    estimates, wall, cpu = timed_run_cells(
                        self.session, [jobs[position] for position in chunk]
                    )
                # One opaque id per batch: cells computed together share
                # it, so ResultSet.wall_seconds can count each batch once
                # even when two batches report equal wall clocks.
                stamp = dict(
                    spec_hash=spec_hash,
                    block_size=self.session.block_size,
                    backend=self.session.backend_name,
                    git=git_describe(),
                    wall_seconds=wall,
                    compute_seconds=cpu,
                    batch=uuid.uuid4().hex[:16],
                    kernel=kernel,
                )
                for position, estimate in zip(chunk, estimates):
                    plan = plans[position]
                    record = CellRecord(
                        key=plan.key,
                        axes=dict(plan.axes),
                        estimate=estimate,
                        seed=plan.job.seed,
                        **stamp,
                    )
                    records[position] = record
                    identity = identities[position]
                    if identity is not None:
                        if self.cache is not None:
                            self.cache.put(identity, record)
                        self._resolve(identity, record=record)
                    if progress is not None:
                        progress(plan, record, False)
        except BaseException as exc:
            # Waiters must never hang on a claim the computing thread
            # abandoned; hand them the failure instead.
            for position in todo:
                identity = identities[position]
                if identity is not None and records[position] is None:
                    self._resolve(identity, error=exc)
            raise

    def _resolve(
        self,
        identity: str,
        *,
        record: Optional[CellRecord] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        with self._lock:
            pending = self._inflight.pop(identity, None)
        if pending is not None:
            pending.record = record
            pending.error = error
            pending.event.set()

    def _await_pending(
        self, identity: str, pending: _Pending
    ) -> Optional[CellRecord]:
        pending.event.wait()
        if pending.error is not None:
            raise SimulationError(
                f"the caller computing shared cell {identity[:12]}… failed: "
                f"{pending.error}"
            ) from pending.error
        return pending.record

    @staticmethod
    def _restamp(record: CellRecord, plan: CellPlan, spec_hash: str) -> CellRecord:
        """A cached record as *this* study's cell.

        The estimate and its compute provenance (seed, block size,
        backend, git, timings, batch, kernel) are served verbatim —
        that is the byte-identity contract; only the study-relative
        fields (key, axes, spec hash) are the requester's.
        """
        import dataclasses

        if (
            record.key == plan.key
            and record.spec_hash == spec_hash
            and record.axes == dict(plan.axes)
        ):
            return record
        return dataclasses.replace(
            record,
            key=plan.key,
            axes=dict(plan.axes),
            spec_hash=spec_hash,
        )
