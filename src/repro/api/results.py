"""First-class study results: serialisable, mergeable, resumable.

A :class:`ResultSet` is the output of :meth:`repro.api.study.Study.run`:
one :class:`CellRecord` per study cell, each carrying the full
:class:`~repro.sim.montecarlo.CellEstimate` *and* its provenance — the
spec hash, the cell's derived seed, the block size (part of the
determinism contract), the backend it ran on, ``git describe`` of the
working tree, and the wall/compute seconds of the run that produced it.

Serialisation is exact: floats round-trip through JSON via Python's
shortest-repr float encoding, and NaN (the paper's own convention for
the timely-energy mean of a cell with no timely run) is emitted as the
JSON-extension ``NaN`` literal — ``from_json(to_json(rs))`` rebuilds
estimates that are bit-identical under
:meth:`~repro.sim.montecarlo.CellEstimate.same_values`
(``tests/test_resultset.py`` pins this with a property test).

Merging is set-union over cell keys, gated on the spec hash: two
partial runs of the *same* study (e.g. sharded across machines by
key range) combine into one ResultSet; overlapping or foreign records
are rejected rather than silently preferred.
"""

from __future__ import annotations

import csv
import io
import json
import math
import os
import subprocess
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

from repro.errors import ConfigurationError
from repro.sim.metrics import MeanEstimate, ProportionEstimate
from repro.sim.montecarlo import CellEstimate

__all__ = [
    "CellRecord",
    "ResultSet",
    "git_describe",
    "json_dumps_exact",
    "json_loads_exact",
]

#: Serialisation format tag; bump on incompatible layout changes.
FORMAT = "repro.resultset/1"


def json_dumps_exact(payload: object, *, indent: Optional[int] = None) -> str:
    """JSON text whose floats round-trip bit-exactly.

    Python's shortest-repr float encoding is lossless for every finite
    double, and ``allow_nan`` emits the ``NaN``/``Infinity`` literals
    for the rest — the one float codec shared by :class:`ResultSet`
    and the golden-trace JSONL files of :mod:`repro.goldens`, so a
    value written by either serialiser reloads as the same double.
    """
    return json.dumps(payload, indent=indent, allow_nan=True)


def json_loads_exact(text: str, *, what: str = "payload") -> object:
    """Parse :func:`json_dumps_exact` output; clean error on bad input.

    A :class:`~repro.errors.ConfigurationError` (not a raw
    ``JSONDecodeError``) keeps malformed files an exit-2 configuration
    problem at the CLI instead of a traceback.
    """
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"invalid {what} JSON: {exc}")

_GIT_DESCRIBE: Optional[str] = None
_GIT_DESCRIBE_RAN = False


def git_describe() -> Optional[str]:
    """``git describe --always --dirty`` of the *repro* checkout, or None.

    Run from this package's own directory — provenance must describe
    the code that produced the estimates, not whatever repository the
    user happened to launch from.  Cached per process (stamping must
    not fork git once per cell); a tree that is not a checkout is a
    normal condition (installed package), not an error.
    """
    global _GIT_DESCRIBE, _GIT_DESCRIBE_RAN
    if not _GIT_DESCRIBE_RAN:
        _GIT_DESCRIBE_RAN = True
        try:
            out = subprocess.run(
                ["git", "describe", "--always", "--dirty"],
                capture_output=True,
                text=True,
                timeout=5.0,
                cwd=os.path.dirname(os.path.abspath(__file__)),
            )
            _GIT_DESCRIBE = out.stdout.strip() or None if out.returncode == 0 else None
        except (OSError, subprocess.TimeoutExpired):
            _GIT_DESCRIBE = None
    return _GIT_DESCRIBE


@dataclass(frozen=True)
class CellRecord:
    """One study cell's estimate plus everything needed to trust it."""

    key: str
    axes: Dict[str, object]
    estimate: CellEstimate
    spec_hash: str
    seed: int  #: the cell job's derived seed (not the study root seed)
    block_size: int
    backend: str
    git: Optional[str]
    wall_seconds: float  #: wall clock of the run() batch this cell was in
    compute_seconds: float  #: coordinator CPU seconds of that batch
    #: Opaque id of the ``run()`` batch that computed this cell; cells
    #: of one batch share it.  ``None`` only for records loaded from
    #: files written before the field existed.
    batch: Optional[str] = None
    #: Executor kernel that produced the estimate: ``"exact"`` (the
    #: bit-identical per-rep engine) or ``"fast"`` (the vectorised
    #: block-deterministic engine).  Files written before the field
    #: existed load as ``"exact"`` — the only kernel that existed then.
    kernel: str = "exact"

    def to_dict(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "axes": dict(self.axes),
            "estimate": _estimate_to_dict(self.estimate),
            "provenance": {
                "spec_hash": self.spec_hash,
                "seed": self.seed,
                "block_size": self.block_size,
                "backend": self.backend,
                "git": self.git,
                "wall_seconds": self.wall_seconds,
                "compute_seconds": self.compute_seconds,
                "batch": self.batch,
                "kernel": self.kernel,
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CellRecord":
        try:
            provenance = payload["provenance"]
            return cls(
                key=payload["key"],
                axes=dict(payload["axes"]),
                estimate=_estimate_from_dict(payload["estimate"]),
                spec_hash=provenance["spec_hash"],
                seed=provenance["seed"],
                block_size=provenance["block_size"],
                backend=provenance["backend"],
                git=provenance.get("git"),
                wall_seconds=provenance["wall_seconds"],
                compute_seconds=provenance["compute_seconds"],
                batch=provenance.get("batch"),
                kernel=provenance.get("kernel", "exact"),
            )
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(f"malformed cell record: {exc!r}")


def _mean_to_dict(estimate: MeanEstimate) -> Dict[str, object]:
    return {
        "value": estimate.value,
        "low": estimate.low,
        "high": estimate.high,
        "count": estimate.count,
    }


def _estimate_to_dict(estimate: CellEstimate) -> Dict[str, object]:
    p = estimate.p_timely
    return {
        "p_timely": {
            "value": p.value,
            "low": p.low,
            "high": p.high,
            "trials": p.trials,
        },
        "energy_timely": _mean_to_dict(estimate.energy_timely),
        "energy_all": _mean_to_dict(estimate.energy_all),
        "mean_finish_time_timely": estimate.mean_finish_time_timely,
        "mean_detected_faults": estimate.mean_detected_faults,
        "mean_checkpoints": estimate.mean_checkpoints,
        "mean_sub_checkpoints": estimate.mean_sub_checkpoints,
        "reps": estimate.reps,
    }


def _mean_from_dict(payload: Dict[str, object]) -> MeanEstimate:
    return MeanEstimate(
        value=payload["value"],
        low=payload["low"],
        high=payload["high"],
        count=payload["count"],
    )


def _estimate_from_dict(payload: Dict[str, object]) -> CellEstimate:
    p = payload["p_timely"]
    return CellEstimate(
        p_timely=ProportionEstimate(
            value=p["value"], low=p["low"], high=p["high"], trials=p["trials"]
        ),
        energy_timely=_mean_from_dict(payload["energy_timely"]),
        energy_all=_mean_from_dict(payload["energy_all"]),
        mean_finish_time_timely=payload["mean_finish_time_timely"],
        mean_detected_faults=payload["mean_detected_faults"],
        mean_checkpoints=payload["mean_checkpoints"],
        mean_sub_checkpoints=payload["mean_sub_checkpoints"],
        reps=payload["reps"],
    )


class ResultSet:
    """An ordered, keyed collection of :class:`CellRecord`\\ s.

    Construction validates that every record carries the set's spec
    hash and that keys are unique; insertion order is preserved (for a
    study run, that is the study's canonical cell order).
    """

    def __init__(
        self,
        spec_hash: str,
        records: Iterable[CellRecord] = (),
        *,
        spec: Optional[Dict[str, object]] = None,
    ) -> None:
        self.spec_hash = spec_hash
        #: The resolved :class:`~repro.api.spec.StudySpec` payload this
        #: set was produced from (None for studies over custom
        #: TableSpec objects, which have no declarative form).
        self.spec = spec
        self._records: Dict[str, CellRecord] = {}
        kernel: Optional[str] = None
        for record in records:
            if record.spec_hash != spec_hash:
                raise ConfigurationError(
                    f"record {record.key!r} carries spec hash "
                    f"{record.spec_hash!r}, expected {spec_hash!r}"
                )
            if record.key in self._records:
                raise ConfigurationError(f"duplicate cell key {record.key!r}")
            if kernel is None:
                kernel = record.kernel
            elif record.kernel != kernel:
                raise ConfigurationError(
                    f"record {record.key!r} was computed by the "
                    f"{record.kernel!r} kernel but the set holds "
                    f"{kernel!r} records; exact and fast estimates have "
                    f"different determinism contracts and cannot share "
                    f"a result set"
                )
            self._records[record.key] = record

    # -- access --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __iter__(self) -> Iterator[CellRecord]:
        return iter(self._records.values())

    def keys(self) -> List[str]:
        return list(self._records)

    @property
    def records(self) -> List[CellRecord]:
        return list(self._records.values())

    @property
    def kernel(self) -> Optional[str]:
        """The kernel every record was computed by; None when empty.

        Construction enforces homogeneity, so the first record speaks
        for the set.
        """
        for record in self._records.values():
            return record.kernel
        return None

    def record(self, key: str) -> CellRecord:
        if key not in self._records:
            raise ConfigurationError(
                f"no cell {key!r} in result set; have {len(self._records)} "
                f"cells"
            )
        return self._records[key]

    def estimate(self, key: str) -> CellEstimate:
        """The :class:`CellEstimate` of one cell, by key."""
        return self.record(key).estimate

    def same_values(self, other: "ResultSet") -> bool:
        """Cell-for-cell estimate identity (NaN == NaN), keys aligned."""
        if self.keys() != other.keys():
            return False
        return all(
            mine.estimate.same_values(other.record(key).estimate)
            for key, mine in self._records.items()
        )

    @property
    def wall_seconds(self) -> float:
        """Total batch wall seconds across the set's records.

        Records produced by one ``run()`` call share that batch's wall
        clock, so summing per record would overcount; each batch is
        counted once instead (resumed sets accumulate across runs).
        Batches are identified by the provenance ``batch`` id — two
        distinct batches that happen to report equal wall clocks both
        count.  Records from files written before the batch id existed
        fall back to grouping on the ``(wall_seconds, compute_seconds)``
        value pair.
        """
        seen = set()
        total = 0.0
        for record in self._records.values():
            key = (
                ("batch", record.batch)
                if record.batch is not None
                else ("values", record.wall_seconds, record.compute_seconds)
            )
            if key not in seen:
                seen.add(key)
                total += record.wall_seconds
        return total

    # -- merge / resume ------------------------------------------------

    def merge(self, other: "ResultSet") -> "ResultSet":
        """Union of two disjoint partial results of the same study."""
        if other.spec_hash != self.spec_hash:
            raise ConfigurationError(
                f"cannot merge result sets of different studies "
                f"(spec hashes {self.spec_hash!r} vs {other.spec_hash!r})"
            )
        overlap = [key for key in other._records if key in self._records]
        if overlap:
            raise ConfigurationError(
                f"cannot merge overlapping result sets; "
                f"{len(overlap)} shared cell(s), first: {overlap[0]!r}"
            )
        mine, theirs = self.kernel, other.kernel
        if mine is not None and theirs is not None and mine != theirs:
            raise ConfigurationError(
                f"cannot merge a {mine!r}-kernel result set with a "
                f"{theirs!r}-kernel one; rerun one side so both partials "
                f"use the same kernel"
            )
        return ResultSet(
            self.spec_hash,
            list(self._records.values()) + list(other._records.values()),
            spec=self.spec or other.spec,
        )

    # -- serialisation -------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": FORMAT,
            "spec_hash": self.spec_hash,
            "spec": self.spec,
            "records": [record.to_dict() for record in self._records.values()],
        }

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        """Exact JSON form (NaN emitted as the ``NaN`` literal)."""
        return json_dumps_exact(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ResultSet":
        if not isinstance(payload, dict) or "spec_hash" not in payload:
            raise ConfigurationError("malformed result set payload")
        declared = payload.get("format", FORMAT)
        if declared != FORMAT:
            raise ConfigurationError(
                f"unsupported result set format {declared!r} "
                f"(this build reads {FORMAT!r})"
            )
        records = payload.get("records", [])
        # A string would "work" here — iterating it per character into
        # CellRecord.from_dict — and an int would die with an opaque
        # TypeError deep in the loop; both must be one clean
        # configuration error (the service's 400 for a mangled body).
        if not isinstance(records, (list, tuple)):
            raise ConfigurationError(
                f"result set 'records' must be a list of cell records, "
                f"got {type(records).__name__}"
            )
        return cls(
            payload["spec_hash"],
            [CellRecord.from_dict(item) for item in records],
            spec=payload.get("spec"),
        )

    @classmethod
    def from_json(cls, text: str) -> "ResultSet":
        return cls.from_dict(json_loads_exact(text, what="result set"))

    def save(self, path: str) -> None:
        """Write the JSON form atomically (temp file + rename).

        ``--out r.json --resume r.json`` retry loops must never be able
        to truncate the only copy of prior progress: a crash mid-write
        leaves either the old file or the new one, never a torn JSON.
        """
        _atomic_write(path, self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "ResultSet":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise ConfigurationError(f"cannot read result set {path!r}: {exc}")
        return cls.from_json(text)

    def to_csv(self) -> str:
        """Flat CSV: axis columns, headline stats, key provenance.

        NaN cells render as empty fields (spreadsheet convention); the
        JSON form is the lossless one.
        """
        axis_names: List[str] = []
        for record in self._records.values():
            for name in record.axes:
                if name not in axis_names:
                    axis_names.append(name)
        columns = axis_names + [
            "p",
            "p_low",
            "p_high",
            "e",
            "e_low",
            "e_high",
            "e_all",
            "reps",
            "seed",
            "block_size",
            "backend",
            "kernel",
            "spec_hash",
            "git",
        ]
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(columns)
        for record in self._records.values():
            estimate = record.estimate
            row: List[object] = [
                record.axes.get(name, "") for name in axis_names
            ]
            row += [
                _csv_float(estimate.p),
                _csv_float(estimate.p_timely.low),
                _csv_float(estimate.p_timely.high),
                _csv_float(estimate.e),
                _csv_float(estimate.energy_timely.low),
                _csv_float(estimate.energy_timely.high),
                _csv_float(estimate.energy_all.value),
                estimate.reps,
                record.seed,
                record.block_size,
                record.backend,
                record.kernel,
                record.spec_hash,
                record.git or "",
            ]
            writer.writerow(row)
        return buffer.getvalue()

    def save_csv(self, path: str) -> None:
        _atomic_write(path, self.to_csv())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultSet(spec_hash={self.spec_hash!r}, "
            f"cells={len(self._records)})"
        )


def _csv_float(value: float) -> object:
    return "" if isinstance(value, float) and math.isnan(value) else repr(value)


def _atomic_write(path: str, text: str) -> None:
    """Write ``text`` to ``path`` via a same-directory temp + rename.

    OSErrors surface as :class:`ConfigurationError` (matching
    :meth:`ResultSet.load` / spec loading), so an unwritable ``--out``
    path is a clean exit-2 configuration problem, not a traceback.
    """
    import tempfile

    directory = os.path.dirname(os.path.abspath(path))
    handle = None
    try:
        fd, temp_path = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
        )
        handle = os.fdopen(fd, "w", encoding="utf-8", newline="")
        handle.write(text)
        handle.close()
        os.replace(temp_path, path)
    except OSError as exc:
        if handle is not None:
            try:
                handle.close()
                os.unlink(temp_path)
            except OSError:
                pass
        raise ConfigurationError(f"cannot write {path!r}: {exc}")
