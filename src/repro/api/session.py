"""The execution session: one owned backend/runner, reused everywhere.

Before the façade, every call built (and tore down) its own execution
resources: ``run_table(backend="process")`` spun a pool up and released
it, the next call paid the startup again.  A :class:`Session` owns one
:class:`~repro.sim.parallel.BatchRunner` for its whole lifetime — built
from one validated :class:`~repro.experiments.config.ExecutionSettings`
(the single source of truth for *where things run*) — and every study,
table or ad-hoc estimate run through it reuses the same workers::

    from repro.api import Session, StudySpec

    with Session(backend="process", workers=8) as session:
        a = session.run(StudySpec(kind="table", table="1a", reps=2000))
        b = session.run(StudySpec(kind="operating_map", table="1a",
                                  u_grid=[0.6, 0.8], lam_grid=[1e-4, 1e-3]))

Results are bit-identical to the serial pass for a fixed block size —
the session changes resource lifetimes, never estimates.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, List, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.experiments.config import ExecutionSettings
from repro.sim.montecarlo import CellEstimate
from repro.sim.parallel import BatchRunner

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.results import ResultSet
    from repro.api.spec import StudySpec
    from repro.api.study import Study

__all__ = ["Session"]


class Session:
    """Owns one backend/runner lifecycle; the façade's execution seam.

    Parameters
    ----------
    settings:
        An :class:`~repro.experiments.config.ExecutionSettings` — the
        one validated where-does-it-run selector.  Mutually exclusive
        with the keyword shorthand below.
    runner:
        Adopt an existing :class:`~repro.sim.parallel.BatchRunner`
        instead of building one.  The session *borrows* it: ``close()``
        leaves it running (whoever built it owns it).  This is how the
        legacy entrypoints wrap their ``runner=`` argument.
    backend / workers / chunk_size / cluster_workers / url /
    adaptive_batching / kernel:
        Shorthand forwarded into a fresh ``ExecutionSettings`` —
        ``Session(backend="process", workers=8)`` reads like the CLI.

    A session built from settings owns its runner and releases it on
    :meth:`close` (or context-manager exit); a closed session rejects
    further work instead of silently rebuilding resources.
    """

    def __init__(
        self,
        settings: Optional[ExecutionSettings] = None,
        *,
        runner: Optional[BatchRunner] = None,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        cluster_workers: int = 0,
        url: Optional[str] = None,
        adaptive_batching: bool = True,
        kernel: Optional[str] = None,
    ) -> None:
        shorthand = (
            backend is not None
            or workers is not None
            or chunk_size is not None
            or cluster_workers
            or url is not None
            or not adaptive_batching
            or kernel is not None
        )
        if runner is not None:
            if settings is not None or shorthand:
                raise ConfigurationError(
                    "pass either runner= (adopt an existing runner) or "
                    "settings/backend shorthand (build one), not both"
                )
            self.settings: Optional[ExecutionSettings] = None
            self._runner = runner
            self._owns_runner = False
        else:
            if settings is not None and shorthand:
                raise ConfigurationError(
                    "pass either settings= or the backend/workers/... "
                    "shorthand, not both"
                )
            self.settings = settings or ExecutionSettings(
                backend=backend,
                workers=workers,
                chunk_size=chunk_size,
                cluster_workers=cluster_workers,
                url=url,
                adaptive_batching=adaptive_batching,
                kernel=kernel or "exact",
            )
            self._runner = self.settings.make_runner() or BatchRunner.serial()
            self._owns_runner = True
        self._closed = False

    # -- introspection -------------------------------------------------

    @property
    def runner(self) -> BatchRunner:
        """The session's :class:`BatchRunner` (stable for its lifetime)."""
        self._check_open()
        return self._runner

    @property
    def backend_name(self) -> str:
        """Name of the execution backend (``serial``/``process``/…)."""
        return self._runner.backend.name

    @property
    def block_size(self) -> int:
        """The determinism-contract block size cells are cut into."""
        return self._runner.block_size

    @property
    def kernel(self) -> str:
        """The session's default executor kernel (``exact``/``fast``).

        Sessions that adopt a foreign runner carry no settings and
        default to ``exact`` — the kernel is a job property, not a
        runner one, so adopted runners lose nothing.
        """
        if self.settings is None:
            return "exact"
        return self.settings.kernel

    def describe(self) -> str:
        """Human-readable execution provenance, e.g. ``process[8]/256``."""
        name = self.backend_name
        workers = getattr(self._runner, "workers", 1)
        detail = f"[{workers}]" if name == "process" else ""
        return f"{name}{detail}/{self.block_size}"

    # -- execution -----------------------------------------------------

    def run(
        self,
        study: Union["Study", "StudySpec"],
        *,
        resume: Optional["ResultSet"] = None,
    ) -> "ResultSet":
        """Run a study (or a bare spec) on this session's backend.

        With ``resume``, only cells missing from the partial
        :class:`~repro.api.results.ResultSet` are computed; the result
        is the completed set (see :meth:`repro.api.study.Study.run`).
        """
        from repro.api.study import Study

        if not isinstance(study, Study):
            study = Study(study)
        return study.run(self, resume=resume)

    def run_cells(self, jobs: Sequence[object]) -> List[CellEstimate]:
        """Estimate a grid of prepared cell jobs (façade internals)."""
        self._check_open()
        return self._runner.run_cells(jobs)

    def estimate(
        self,
        task,
        policy_factory,
        *,
        reps: int,
        seed: int = 0,
        **kwargs,
    ) -> CellEstimate:
        """One ad-hoc cell on this session's backend.

        The session-owned twin of :func:`repro.sim.montecarlo.estimate`
        — same arguments (minus ``runner``/``backend``, which the
        session supplies), same blocked reduction, same estimates.
        """
        from repro.sim.montecarlo import estimate as estimate_cell

        self._check_open()
        return estimate_cell(
            task,
            policy_factory,
            reps=reps,
            seed=seed,
            runner=self._runner,
            **kwargs,
        )

    # -- lifecycle -----------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release owned execution resources (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._owns_runner:
            self._runner.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigurationError(
                "session is closed; build a new Session for further runs"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"Session({self.describe()}, {state})"


def timed_run_cells(session: Session, jobs: Sequence[object]):
    """Run jobs through a session, returning (estimates, wall, cpu).

    Shared by :class:`~repro.api.study.Study` so every record's
    wall/compute provenance is measured the same way: wall clock around
    the whole batch, plus this process's CPU seconds (for parallel
    backends that is coordination cost, not worker compute).
    """
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    estimates = session.run_cells(jobs)
    return (
        estimates,
        time.perf_counter() - wall_start,
        time.process_time() - cpu_start,
    )
