"""Canonical cell enumeration for every experiment the library runs.

A *study* — a table regeneration, a fixed-m ablation, a utilisation
sweep, an operating map — is ultimately a flat, ordered list of Monte-
Carlo cells, each fully described by a picklable job.  This module is
the single place that list is built: the declarative façade
(:mod:`repro.api.spec`) and the legacy entrypoints (``run_table``,
``fixed_m_study``, ``utilization_sweep``, ``operating_map``, …) both
expand through these functions, so the two paths cannot drift — same
cells, same seeds, same jobs, bit-identical estimates.

Seeding is part of the contract and is therefore frozen here:

* table/row cells fork the root :class:`~repro.sim.rng.RandomSource`
  with a stable per-cell label (:func:`cell_label` — arithmetic, never
  ``hash``), exactly as ``run_table`` always has;
* fixed-m and rate-factor cells share the study seed verbatim;
* utilisation-sweep cells use ``seed + int(u * 1000)``;
* operating-map cells use ``seed + int(u * 997) + int(lam * 1e7)``.

Because every derivation is a pure function of (root seed, cell
identity), any *subset* of a study's cells can be recomputed in
isolation and still land on the same realisations — the property that
makes resume-from-partial :class:`~repro.api.results.ResultSet`\\ s
exact rather than approximate.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import List, Sequence, Tuple

from repro.experiments.config import TableSpec
from repro.sim.backends import CellJob
from repro.sim.rng import RandomSource
from repro.sim.task import TaskSpec

__all__ = [
    "CellPlan",
    "cell_label",
    "table_cell_job",
    "table_cells",
    "row_cells",
    "fixed_m_cells",
    "rate_factor_cells",
    "utilization_cells",
    "operating_map_cells",
]


@dataclass(frozen=True)
class CellPlan:
    """One cell of a study: a stable key, its axis values, and its job.

    ``key`` is unique within the study and stable across processes and
    library versions (floats are embedded via ``repr``, which
    round-trips exactly) — it is what :class:`~repro.api.results.
    ResultSet` records are addressed by, and what resume uses to decide
    which cells still need computing.  ``axes`` carries the same
    coordinates as structured pairs for CSV export and filtering.
    """

    key: str
    axes: Tuple[Tuple[str, object], ...]
    job: object  # CellJob or repro.sim.fastpath.StaticCellJob


def cell_label(table_id: str, u: float, lam: float, column: int) -> int:
    """Deterministic integer label for a table cell's seed fork.

    Built from stable arithmetic (never :func:`hash`, which is salted
    per process for strings), so the same (table, row, scheme) always
    maps to the same fault realisations for a given root seed.
    """
    table_part = sum(ord(ch) * (i + 1) for i, ch in enumerate(table_id))
    u_part = int(round(u * 10_000))
    lam_part = int(round(lam * 1e9))
    return (
        table_part * 1_000_003 + u_part * 7_919 + lam_part * 101 + column
    ) & 0x7FFFFFFF


def table_cell_job(
    spec: TableSpec,
    u: float,
    lam: float,
    column: int,
    *,
    reps: int,
    source: RandomSource,
    faults_during_overhead: bool = False,
    fast_static: bool = False,
):
    """The fully-specified job of one (row, scheme) table cell.

    Seeds come from a per-cell fork of ``source`` keyed by
    :func:`cell_label`, so a cell built in isolation (resume) is
    identical to the same cell built as part of the full grid.
    """
    cell_source = source.fork(cell_label(spec.table_id, u, lam, column))
    return spec.cell_job(
        u,
        lam,
        spec.schemes[column],
        reps=reps,
        seed=cell_source.seed,
        fast_static=fast_static,
        faults_during_overhead=faults_during_overhead,
    )


def row_cells(
    spec: TableSpec,
    u: float,
    lam: float,
    *,
    reps: int,
    seed: int,
    faults_during_overhead: bool = False,
    fast_static: bool = False,
) -> List[CellPlan]:
    """The scheme cells of one (U, λ) row, in column order."""
    source = RandomSource(seed)
    return [
        CellPlan(
            key=f"u={u!r}|lam={lam!r}|scheme={scheme}",
            axes=(("u", u), ("lam", lam), ("scheme", scheme)),
            job=table_cell_job(
                spec,
                u,
                lam,
                column,
                reps=reps,
                source=source,
                faults_during_overhead=faults_during_overhead,
                fast_static=fast_static,
            ),
        )
        for column, scheme in enumerate(spec.schemes)
    ]


def table_cells(
    spec: TableSpec,
    *,
    reps: int,
    seed: int,
    faults_during_overhead: bool = False,
    fast_static: bool = False,
) -> List[CellPlan]:
    """Every (row × scheme) cell of a table, rows then columns."""
    plans: List[CellPlan] = []
    for u, lam in spec.rows:
        plans.extend(
            row_cells(
                spec,
                u,
                lam,
                reps=reps,
                seed=seed,
                faults_during_overhead=faults_during_overhead,
                fast_static=fast_static,
            )
        )
    return plans


def fixed_m_cells(
    task: TaskSpec,
    ms: Sequence[int],
    *,
    reps: int,
    seed: int,
) -> List[CellPlan]:
    """Fixed-subdivision cells plus the adaptive ``num_SCP`` control."""
    # Imported here: sweeps re-exports these plans, so a module-level
    # import would be circular.
    from repro.core.schemes import AdaptiveSCPPolicy
    from repro.experiments.sweeps import FixedSubdivisionSCPPolicy

    plans = [
        CellPlan(
            key=f"m={m}",
            axes=(("m", m),),
            job=CellJob(
                task=task,
                policy_factory=partial(FixedSubdivisionSCPPolicy, m),
                reps=reps,
                seed=seed,
            ),
        )
        for m in ms
    ]
    plans.append(
        CellPlan(
            key="adaptive",
            axes=(("m", "adaptive"),),
            job=CellJob(
                task=task,
                policy_factory=AdaptiveSCPPolicy,
                reps=reps,
                seed=seed,
            ),
        )
    )
    return plans


def rate_factor_cells(
    task: TaskSpec,
    factors: Sequence[float],
    *,
    reps: int,
    seed: int,
) -> List[CellPlan]:
    """``A_D_S`` cells under different analysis-rate factors."""
    from repro.core.schemes import AdaptiveConfig, AdaptiveSCPPolicy

    return [
        CellPlan(
            key=f"factor={factor!r}",
            axes=(("factor", factor),),
            job=CellJob(
                task=task,
                policy_factory=partial(
                    AdaptiveSCPPolicy,
                    AdaptiveConfig(analysis_rate_factor=factor),
                ),
                reps=reps,
                seed=seed,
            ),
        )
        for factor in factors
    ]


def utilization_cells(
    spec: TableSpec,
    u_grid: Sequence[float],
    lam: float,
    *,
    reps: int,
    seed: int,
    fast_static: bool = False,
) -> List[CellPlan]:
    """The (U × scheme) grid behind a utilisation sweep."""
    return [
        CellPlan(
            key=f"u={u!r}|scheme={scheme}",
            axes=(("u", u), ("lam", lam), ("scheme", scheme)),
            job=spec.cell_job(
                u,
                lam,
                scheme,
                reps=reps,
                seed=seed + int(u * 1000),
                fast_static=fast_static,
            ),
        )
        for u in u_grid
        for scheme in spec.schemes
    ]


def operating_map_cells(
    spec: TableSpec,
    u_grid: Sequence[float],
    lam_grid: Sequence[float],
    *,
    reps: int,
    seed: int,
    fast_static: bool = False,
) -> List[CellPlan]:
    """The (λ × U × scheme) grid behind an operating map."""
    return [
        CellPlan(
            key=f"u={u!r}|lam={lam!r}|scheme={scheme}",
            axes=(("u", u), ("lam", lam), ("scheme", scheme)),
            job=spec.cell_job(
                u,
                lam,
                scheme,
                reps=reps,
                seed=seed + int(u * 997) + int(lam * 1e7),
                fast_static=fast_static,
            ),
        )
        for lam in lam_grid
        for u in u_grid
        for scheme in spec.schemes
    ]
