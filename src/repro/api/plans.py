"""Canonical cell enumeration for every experiment the library runs.

A *study* — a table regeneration, a fixed-m ablation, a utilisation
sweep, an operating map — is ultimately a flat, ordered list of Monte-
Carlo cells, each fully described by a picklable job.  This module is
the single place that list is built: the declarative façade
(:mod:`repro.api.spec`) and the legacy entrypoints (``run_table``,
``fixed_m_study``, ``utilization_sweep``, ``operating_map``, …) both
expand through these functions, so the two paths cannot drift — same
cells, same seeds, same jobs, bit-identical estimates.

Seeding is part of the contract and is therefore frozen here:

* table/row cells fork the root :class:`~repro.sim.rng.RandomSource`
  with a stable per-cell label (:func:`cell_label` — arithmetic, never
  ``hash``), exactly as ``run_table`` always has;
* fixed-m and rate-factor cells share the study seed verbatim;
* utilisation-sweep cells use ``seed + int(u * 1000)``;
* operating-map cells use ``seed + int(u * 997) + int(lam * 1e7)``;
* taskset cells fork the root source with :func:`workload_label`
  (arithmetic over the pattern name and utilization — the multi-task
  analogue of :func:`cell_label`);
* frontier cells share the study seed verbatim (like fixed-m: every
  cell is the same task under a different policy, so common random
  numbers sharpen the comparison).

Because every derivation is a pure function of (root seed, cell
identity), any *subset* of a study's cells can be recomputed in
isolation and still land on the same realisations — the property that
makes resume-from-partial :class:`~repro.api.results.ResultSet`\\ s
exact rather than approximate.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from functools import partial
from typing import List, Optional, Sequence, Tuple

from repro.experiments.config import TableSpec
from repro.sim.backends import CellJob
from repro.sim.rng import RandomSource
from repro.sim.task import TaskSpec

__all__ = [
    "CellPlan",
    "cell_label",
    "cell_identity",
    "describe_cell_component",
    "UncacheableCell",
    "table_cell_job",
    "table_cells",
    "row_cells",
    "fixed_m_cells",
    "rate_factor_cells",
    "utilization_cells",
    "operating_map_cells",
    "workload_label",
    "taskset_cells",
    "frontier_cells",
]


@dataclass(frozen=True)
class CellPlan:
    """One cell of a study: a stable key, its axis values, and its job.

    ``key`` is unique within the study and stable across processes and
    library versions (floats are embedded via ``repr``, which
    round-trips exactly) — it is what :class:`~repro.api.results.
    ResultSet` records are addressed by, and what resume uses to decide
    which cells still need computing.  ``axes`` carries the same
    coordinates as structured pairs for CSV export and filtering.
    """

    key: str
    axes: Tuple[Tuple[str, object], ...]
    job: object  # CellJob or repro.sim.fastpath.StaticCellJob


class UncacheableCell(ValueError):
    """A cell job contains a component with no stable content identity.

    Raised by :func:`cell_identity` for payloads the canonicaliser
    cannot describe as a pure function of their content — e.g. a
    closure or lambda, whose behaviour is not recoverable from its
    qualified name.  Callers that memoise (the study service's cell
    cache) must treat such cells as compute-always, never guess a key:
    a wrong key served verbatim would be silent data corruption.
    """


def describe_cell_component(obj: object) -> object:
    """A canonical, JSON-able description of one cell-job component.

    The recursive canonicaliser behind :func:`cell_identity`.  Two
    objects describing the same computation — same dataclass fields,
    same factory over the same module-level class, same exact float
    values — produce equal descriptions; anything whose behaviour
    cannot be recovered from content (closures, lambdas, instances of
    unknown classes) raises :class:`UncacheableCell` instead of
    producing a key that could alias distinct computations.

    Floats are embedded via ``repr`` (shortest form, round-trips every
    finite double exactly, distinguishes ``-0.0``/``nan``/``inf`` as
    text), so the description — and therefore the cache key — is exact
    in the same sense the rest of the serialisation stack is.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return {"!float": repr(obj)}
    if isinstance(obj, (tuple, list)):
        return [describe_cell_component(item) for item in obj]
    if isinstance(obj, dict):
        if not all(isinstance(key, str) for key in obj):
            raise UncacheableCell(f"non-string dict keys in {obj!r}")
        return {
            "!dict": {
                key: describe_cell_component(obj[key]) for key in sorted(obj)
            }
        }
    if isinstance(obj, type):
        return {"!class": f"{obj.__module__}:{obj.__qualname__}"}
    if isinstance(obj, partial):
        return {
            "!partial": describe_cell_component(obj.func),
            "args": [describe_cell_component(item) for item in obj.args],
            "kwargs": {
                key: describe_cell_component(value)
                for key, value in sorted(obj.keywords.items())
            },
        }
    if dataclasses.is_dataclass(obj):
        return {
            "!type": f"{type(obj).__module__}:{type(obj).__qualname__}",
            "fields": {
                field.name: describe_cell_component(getattr(obj, field.name))
                for field in dataclasses.fields(obj)
            },
        }
    if callable(obj):
        qualname = getattr(obj, "__qualname__", "")
        module = getattr(obj, "__module__", None)
        if not qualname or module is None or "<locals>" in qualname:
            # A closure/lambda's behaviour depends on captured state the
            # name does not carry — no sound content key exists.
            raise UncacheableCell(
                f"cannot derive a content identity for {obj!r}"
            )
        return {"!function": f"{module}:{qualname}"}
    raise UncacheableCell(
        f"cannot derive a content identity for {type(obj).__name__} "
        f"value {obj!r}"
    )


#: Cell-identity format tag, folded into every key.  Bump whenever the
#: canonicalisation (or anything upstream that changes what a key must
#: capture) changes incompatibly: old cache entries then miss cleanly
#: instead of aliasing.
CELL_IDENTITY_FORMAT = "repro.cell/1"


def cell_identity(job: object, *, block_size: int) -> Optional[str]:
    """Content-addressed identity of one Monte-Carlo cell, or ``None``.

    The key the study service memoises completed cells under: a sha256
    over the canonical description of *everything that determines the
    cell's estimate* — the job type, the task spec, the policy factory
    and its scheme config, reps, the derived cell seed, the fault
    process and energy model, the executor ``kernel``, and the block
    size (the unit of the blocked statistics reduction; fast-kernel and
    static-fast-path draws are functions of it).  Axes labels and study
    identity are deliberately *not* part of the key: two different
    studies that expand to the same job share the cell — that is the
    point of the cache — while ``exact`` and ``fast`` kernels are
    different jobs and can never alias.

    Returns ``None`` for jobs with no sound content identity (see
    :class:`UncacheableCell`) — callers compute those without caching.
    """
    try:
        described = describe_cell_component(job)
    except UncacheableCell:
        return None
    payload = json.dumps(
        {
            "format": CELL_IDENTITY_FORMAT,
            "job": described,
            "block_size": block_size,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def cell_label(table_id: str, u: float, lam: float, column: int) -> int:
    """Deterministic integer label for a table cell's seed fork.

    Built from stable arithmetic (never :func:`hash`, which is salted
    per process for strings), so the same (table, row, scheme) always
    maps to the same fault realisations for a given root seed.
    """
    table_part = sum(ord(ch) * (i + 1) for i, ch in enumerate(table_id))
    u_part = int(round(u * 10_000))
    lam_part = int(round(lam * 1e9))
    return (
        table_part * 1_000_003 + u_part * 7_919 + lam_part * 101 + column
    ) & 0x7FFFFFFF


def table_cell_job(
    spec: TableSpec,
    u: float,
    lam: float,
    column: int,
    *,
    reps: int,
    source: RandomSource,
    faults_during_overhead: bool = False,
    fast_static: bool = False,
):
    """The fully-specified job of one (row, scheme) table cell.

    Seeds come from a per-cell fork of ``source`` keyed by
    :func:`cell_label`, so a cell built in isolation (resume) is
    identical to the same cell built as part of the full grid.
    """
    cell_source = source.fork(cell_label(spec.table_id, u, lam, column))
    return spec.cell_job(
        u,
        lam,
        spec.schemes[column],
        reps=reps,
        seed=cell_source.seed,
        fast_static=fast_static,
        faults_during_overhead=faults_during_overhead,
    )


def row_cells(
    spec: TableSpec,
    u: float,
    lam: float,
    *,
    reps: int,
    seed: int,
    faults_during_overhead: bool = False,
    fast_static: bool = False,
) -> List[CellPlan]:
    """The scheme cells of one (U, λ) row, in column order."""
    source = RandomSource(seed)
    return [
        CellPlan(
            key=f"u={u!r}|lam={lam!r}|scheme={scheme}",
            axes=(("u", u), ("lam", lam), ("scheme", scheme)),
            job=table_cell_job(
                spec,
                u,
                lam,
                column,
                reps=reps,
                source=source,
                faults_during_overhead=faults_during_overhead,
                fast_static=fast_static,
            ),
        )
        for column, scheme in enumerate(spec.schemes)
    ]


def table_cells(
    spec: TableSpec,
    *,
    reps: int,
    seed: int,
    faults_during_overhead: bool = False,
    fast_static: bool = False,
) -> List[CellPlan]:
    """Every (row × scheme) cell of a table, rows then columns."""
    plans: List[CellPlan] = []
    for u, lam in spec.rows:
        plans.extend(
            row_cells(
                spec,
                u,
                lam,
                reps=reps,
                seed=seed,
                faults_during_overhead=faults_during_overhead,
                fast_static=fast_static,
            )
        )
    return plans


def fixed_m_cells(
    task: TaskSpec,
    ms: Sequence[int],
    *,
    reps: int,
    seed: int,
) -> List[CellPlan]:
    """Fixed-subdivision cells plus the adaptive ``num_SCP`` control."""
    # Imported here: sweeps re-exports these plans, so a module-level
    # import would be circular.
    from repro.core.schemes import AdaptiveSCPPolicy
    from repro.experiments.sweeps import FixedSubdivisionSCPPolicy

    plans = [
        CellPlan(
            key=f"m={m}",
            axes=(("m", m),),
            job=CellJob(
                task=task,
                policy_factory=partial(FixedSubdivisionSCPPolicy, m),
                reps=reps,
                seed=seed,
            ),
        )
        for m in ms
    ]
    plans.append(
        CellPlan(
            key="adaptive",
            axes=(("m", "adaptive"),),
            job=CellJob(
                task=task,
                policy_factory=AdaptiveSCPPolicy,
                reps=reps,
                seed=seed,
            ),
        )
    )
    return plans


def rate_factor_cells(
    task: TaskSpec,
    factors: Sequence[float],
    *,
    reps: int,
    seed: int,
) -> List[CellPlan]:
    """``A_D_S`` cells under different analysis-rate factors."""
    from repro.core.schemes import AdaptiveConfig, AdaptiveSCPPolicy

    return [
        CellPlan(
            key=f"factor={factor!r}",
            axes=(("factor", factor),),
            job=CellJob(
                task=task,
                policy_factory=partial(
                    AdaptiveSCPPolicy,
                    AdaptiveConfig(analysis_rate_factor=factor),
                ),
                reps=reps,
                seed=seed,
            ),
        )
        for factor in factors
    ]


def utilization_cells(
    spec: TableSpec,
    u_grid: Sequence[float],
    lam: float,
    *,
    reps: int,
    seed: int,
    fast_static: bool = False,
) -> List[CellPlan]:
    """The (U × scheme) grid behind a utilisation sweep."""
    return [
        CellPlan(
            key=f"u={u!r}|scheme={scheme}",
            axes=(("u", u), ("lam", lam), ("scheme", scheme)),
            job=spec.cell_job(
                u,
                lam,
                scheme,
                reps=reps,
                seed=seed + int(u * 1000),
                fast_static=fast_static,
            ),
        )
        for u in u_grid
        for scheme in spec.schemes
    ]


def workload_label(pattern: str, u: float) -> int:
    """Deterministic integer label for a taskset cell's seed fork.

    The multi-task analogue of :func:`cell_label`: stable arithmetic
    over the pattern name and target utilization, never ``hash``.
    """
    pattern_part = sum(ord(ch) * (i + 1) for i, ch in enumerate(pattern))
    u_part = int(round(u * 10_000))
    return (pattern_part * 1_000_003 + u_part * 7_919) & 0x7FFFFFFF


def taskset_cells(
    patterns: Sequence[str],
    u_grid: Sequence[float],
    lam: float,
    *,
    n_tasks: int,
    horizon: float,
    sched: str,
    freqs: Sequence[float],
    reps: int,
    seed: int,
) -> List[CellPlan]:
    """The (pattern × U) grid of generated multi-task workloads.

    One cell = one workload: the taskset is regenerated inside the
    worker from the cell seed (forked per cell, so two cells can never
    share fault realisations *or* workloads), then simulated at the
    engine-selected operating point.
    """
    # Imported here to keep the api -> workloads edge lazy, matching
    # the scheme imports above.
    from repro.rts.generators import WorkloadParams
    from repro.workloads.engine import TasksetCellJob

    source = RandomSource(seed)
    return [
        CellPlan(
            key=f"pattern={pattern}|u={u!r}",
            axes=(("pattern", pattern), ("u", u), ("lam", lam)),
            job=TasksetCellJob(
                params=WorkloadParams(
                    pattern=pattern,
                    n_tasks=n_tasks,
                    utilization=u,
                    fault_rate=lam,
                ),
                horizon=horizon,
                policy=sched,
                frequencies=tuple(freqs),
                reps=reps,
                seed=source.fork(workload_label(pattern, u)).seed,
            ),
        )
        for pattern in patterns
        for u in u_grid
    ]


def frontier_cells(
    task: TaskSpec,
    freqs: Sequence[float],
    ms: Sequence[int],
    *,
    reps: int,
    seed: int,
) -> List[CellPlan]:
    """The (frequency × checkpoint-count) grid of a Pareto sweep.

    Every cell runs the same task under a different equidistant
    configuration with the study seed verbatim — common random numbers,
    like the fixed-m ablation — so dominance comparisons between
    configurations are as sharp as the rep count allows.
    """
    from repro.workloads.frontier import EquidistantPolicy

    return [
        CellPlan(
            key=f"f={f!r}|m={m}",
            axes=(("f", f), ("m", m)),
            job=CellJob(
                task=task,
                policy_factory=partial(EquidistantPolicy, f, m),
                reps=reps,
                seed=seed,
            ),
        )
        for f in freqs
        for m in ms
    ]


def operating_map_cells(
    spec: TableSpec,
    u_grid: Sequence[float],
    lam_grid: Sequence[float],
    *,
    reps: int,
    seed: int,
    fast_static: bool = False,
) -> List[CellPlan]:
    """The (λ × U × scheme) grid behind an operating map."""
    return [
        CellPlan(
            key=f"u={u!r}|lam={lam!r}|scheme={scheme}",
            axes=(("u", u), ("lam", lam), ("scheme", scheme)),
            job=spec.cell_job(
                u,
                lam,
                scheme,
                reps=reps,
                seed=seed + int(u * 997) + int(lam * 1e7),
                fast_static=fast_static,
            ),
        )
        for lam in lam_grid
        for u in u_grid
        for scheme in spec.schemes
    ]
