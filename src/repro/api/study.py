"""Study: a spec bound to its cells, runnable and resumable.

``Study.run(session)`` is the one pipeline every experiment flows
through now: expand the spec to its canonical cell list
(:mod:`repro.api.plans`), skip cells a partial
:class:`~repro.api.results.ResultSet` already holds, and hand the rest
to a :class:`~repro.api.scheduler.CellScheduler` — the shared compute
loop that dispatches one interleaved batch on the session's backend
and stamps each fresh record with full provenance.  The study service
(:mod:`repro.service`) drives the *same* scheduler with a content-
addressed cache behind it; ``Study.run`` is just its cache-less
client.  Resume is exact, not approximate: cell seeds are pure
functions of (root seed, cell identity), so a cell computed in a
resumed run is bit-identical to the one a fresh full run would
produce — ``tests/test_resultset.py`` pins that cell-for-cell.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.api.plans import CellPlan
from repro.api.results import ResultSet
from repro.api.scheduler import CellScheduler, ProgressCallback
from repro.api.session import Session
from repro.api.spec import StudySpec
from repro.errors import ConfigurationError
from repro.experiments.config import TableSpec

__all__ = ["Study"]


class Study:
    """A runnable study: a :class:`StudySpec` plus its resolved table.

    Parameters
    ----------
    spec:
        The declarative study description.
    table:
        Optional custom :class:`TableSpec` overriding the registry
        lookup of ``spec.table`` — the hook that lets legacy callers
        holding a bespoke spec object (``run_table(TableSpec(...))``)
        flow through the façade.  Custom-table studies run and resume
        normally but have no JSON form, and their :attr:`spec_hash` is
        salted with a fingerprint of the table object so a resume
        against a *different* custom table is rejected.
    """

    def __init__(
        self,
        spec: Union[StudySpec, dict],
        *,
        table: Optional[TableSpec] = None,
    ) -> None:
        if isinstance(spec, dict):
            spec = StudySpec.from_dict(spec)
        if not isinstance(spec, StudySpec):
            raise ConfigurationError(
                f"spec must be a StudySpec or a spec dict, got "
                f"{type(spec).__name__}"
            )
        self.spec = spec.resolved()
        self.table = table
        self._cells: Optional[List[CellPlan]] = None

    @classmethod
    def from_file(cls, path: str) -> "Study":
        return cls(StudySpec.from_file(path))

    @property
    def spec_hash(self) -> str:
        """Provenance hash; includes the custom table's fingerprint."""
        base = self.spec.spec_hash
        if self.table is None:
            return base
        import hashlib

        salt = hashlib.sha256(repr(self.table).encode()).hexdigest()[:8]
        return f"{base}+{salt}"

    def cells(self) -> List[CellPlan]:
        """The study's canonical, ordered cell list.

        Computed once and cached (the spec is frozen and the table
        fixed at construction): expansion forks a ``SeedSequence`` per
        cell, which callers — ``run()``, CLI rendering, benchmarks —
        should not pay repeatedly on grids of thousands.  Returns a
        fresh list each call; the plans themselves are shared and
        frozen.
        """
        if self._cells is None:
            self._cells = self.spec.cells(self.table)
        return list(self._cells)

    def missing(self, partial: Optional[ResultSet]) -> List[CellPlan]:
        """The cells a partial result set does not cover yet."""
        return self._missing_from(self.cells(), partial)

    def _missing_from(
        self, plans: List[CellPlan], partial: Optional[ResultSet]
    ) -> List[CellPlan]:
        if partial is None:
            return plans
        if partial.spec_hash != self.spec_hash:
            raise ConfigurationError(
                f"result set belongs to a different study (spec hash "
                f"{partial.spec_hash!r}, this study is {self.spec_hash!r}); "
                f"refusing to resume across studies"
            )
        return [plan for plan in plans if plan.key not in partial]

    def run(
        self,
        session: Optional[Session] = None,
        *,
        resume: Optional[ResultSet] = None,
        scheduler: Optional[CellScheduler] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> ResultSet:
        """Run the study; with ``resume``, compute only missing cells.

        Returns the *complete* :class:`ResultSet` in canonical cell
        order — resumed records keep their original provenance
        verbatim (they were not recomputed), fresh ones are stamped
        with this run's.  Without a session, an ephemeral serial one is
        used (bit-identical to any other backend at the same block
        size).

        ``scheduler`` routes the compute through a shared
        :class:`~repro.api.scheduler.CellScheduler` (the study
        service's path — its cache and in-flight deduplication then
        apply); it carries its own session, so it is mutually exclusive
        with ``session``.  ``progress`` fires per resolved cell (see
        :meth:`CellScheduler.run_plans`).
        """
        if scheduler is not None and session is not None:
            raise ConfigurationError(
                "pass either session= or scheduler= (which owns its "
                "session), not both"
            )
        plans = self.cells()
        todo = self._missing_from(plans, resume)
        if scheduler is not None:
            return self._run_missing(
                scheduler.session, plans, todo, resume,
                scheduler=scheduler, progress=progress,
            )
        if session is None:
            with Session() as ephemeral:
                return self._run_missing(
                    ephemeral, plans, todo, resume, progress=progress
                )
        return self._run_missing(
            session, plans, todo, resume, progress=progress
        )

    def _effective_kernel(self, session: Session) -> str:
        """The kernel this run uses: ``fast`` if spec *or* session asks.

        The spec is the study's own declaration (hashed into its
        provenance); the session default lets a caller opt a whole
        batch of exact-spec studies into the fast kernel without
        touching their spec hashes.  Either one saying ``fast`` wins.
        """
        if self.spec.kernel == "fast" or session.kernel == "fast":
            return "fast"
        return "exact"

    def _run_missing(
        self,
        session: Session,
        plans: List[CellPlan],
        todo: List[CellPlan],
        resume: Optional[ResultSet],
        *,
        scheduler: Optional[CellScheduler] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> ResultSet:
        kernel = self._effective_kernel(session)
        if resume is not None and resume.kernel not in (None, kernel):
            raise ConfigurationError(
                f"cannot resume a {resume.kernel!r}-kernel result set "
                f"with the {kernel!r} kernel; exact and fast estimates "
                f"must not mix in one set — rerun with the matching "
                f"kernel or start a fresh result file"
            )
        fresh: dict = {}
        if todo:
            if scheduler is None:
                scheduler = CellScheduler(session)
            for record in scheduler.run_plans(
                todo,
                spec_hash=self.spec_hash,
                kernel=kernel,
                progress=progress,
            ):
                fresh[record.key] = record
        # Canonical order: the plan order, pulling each cell from the
        # resumed set or this run — so a resumed-and-completed set is
        # record-for-record aligned with a fresh full run.
        records = []
        for plan in plans:
            if plan.key in fresh:
                records.append(fresh[plan.key])
            else:
                assert resume is not None  # missing() guarantees coverage
                records.append(resume.record(plan.key))
        spec_payload = self.spec.to_dict() if self.table is None else None
        return ResultSet(self.spec_hash, records, spec=spec_payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        custom = ", custom-table" if self.table is not None else ""
        return f"Study({self.spec.kind!r}, table={self.spec.table!r}{custom})"
